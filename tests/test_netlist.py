"""Tests for the netlist core: construction, validation, traversal."""

import pytest

from repro.netlist import (
    CellKind,
    GENERIC,
    Netlist,
    clone,
    collect_stats,
    iter_register_banks,
    netlist_to_dot,
)
from repro.utils.errors import NetlistError


def small_circuit() -> Netlist:
    """clk-driven: out = DFF(a NAND b)."""
    n = Netlist("small")
    a = n.add_input("a")
    b = n.add_input("b")
    clk = n.add_input("clk", clock=True)
    nand = n.add_gate("NAND2", [a, b], name="g1")
    n.add("DFF", name="r0", D=nand, CK=clk, Q="q")
    n.add_output("q")
    return n


class TestConstruction:
    def test_build_and_validate(self):
        n = small_circuit()
        n.validate()
        assert len(n) == 2
        assert n.clock == "clk"

    def test_duplicate_input(self):
        n = Netlist("t")
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_input("a")

    def test_duplicate_output(self):
        n = Netlist("t")
        n.add_input("a")
        n.add_output("a")  # feedthrough port is fine once
        with pytest.raises(NetlistError):
            n.add_output("a")

    def test_double_driver_rejected(self):
        n = Netlist("t")
        a = n.add_input("a")
        y = n.add_gate("INV", [a], name="i0")
        with pytest.raises(NetlistError):
            n.add_gate("INV", [a], output=y, name="i1")

    def test_driving_input_port_rejected(self):
        n = Netlist("t")
        a = n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_gate("INV", [a], output=a)

    def test_unknown_pin(self):
        n = Netlist("t")
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add("INV", name="i0", Z="a")

    def test_wrong_arity(self):
        n = Netlist("t")
        a = n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_gate("NAND2", [a])

    def test_duplicate_instance_name(self):
        n = Netlist("t")
        a = n.add_input("a")
        n.add_gate("INV", [a], name="i0")
        with pytest.raises(NetlistError):
            n.add_gate("INV", [a], name="i0")

    def test_unconnected_pin_fails_validation(self):
        n = Netlist("t")
        n.add("INV", name="i0", A=n.add_input("a"))
        with pytest.raises(NetlistError):
            n.validate()

    def test_undriven_net_with_sinks_fails(self):
        n = Netlist("t")
        n.add("INV", name="i0", A=n.net("floating"), Q=n.net("y"))
        with pytest.raises(NetlistError):
            n.validate()

    def test_new_net_unique(self):
        n = Netlist("t")
        first = n.new_net("w")
        second = n.new_net("w")
        assert first.name != second.name


class TestTopology:
    def test_topo_order_respects_dependencies(self):
        n = Netlist("t")
        a = n.add_input("a")
        x = n.add_gate("INV", [a], name="g_first")
        y = n.add_gate("INV", [x], name="g_second")
        n.add_gate("AND2", [x, y], name="g_third")
        order = [inst.name for inst in n.topo_order()]
        assert order.index("g_first") < order.index("g_second")
        assert order.index("g_second") < order.index("g_third")

    def test_combinational_cycle_detected(self):
        n = Netlist("t")
        loop = n.net("loop")
        n.add("INV", name="i0", A=loop, Q="mid")
        n.add("INV", name="i1", A="mid", Q=loop)
        with pytest.raises(NetlistError, match="cycle"):
            n.topo_order()

    def test_sequential_breaks_cycle(self):
        n = Netlist("t")
        clk = n.add_input("clk", clock=True)
        q = n.net("q")
        inv = n.add_gate("INV", [q], name="i0")
        n.add("DFF", name="r0", D=inv, CK=clk, Q=q)
        n.validate()  # no combinational cycle: DFF breaks it

    def test_fanin_cone(self):
        n = small_circuit()
        cone = n.fanin_cone(n.instances["r0"].data_net())
        assert cone == {"g1"}

    def test_fanout_counts_output_port(self):
        n = small_circuit()
        assert n.nets["q"].fanout == 1  # output port only


class TestQueriesAndClone:
    def test_kind_queries(self):
        n = small_circuit()
        assert len(n.comb_instances()) == 1
        assert len(n.dff_instances()) == 1
        assert not n.latch_instances()

    def test_total_area(self):
        n = small_circuit()
        expected = GENERIC["NAND2"].area + GENERIC["DFF"].area
        assert n.total_area() == pytest.approx(expected)

    def test_clone_is_deep(self):
        n = small_circuit()
        copy = clone(n)
        copy.validate()
        assert copy.instances.keys() == n.instances.keys()
        assert copy.nets.keys() == n.nets.keys()
        assert copy.instances["r0"] is not n.instances["r0"]
        assert copy.clock == "clk"
        assert copy.outputs == ["q"]

    def test_clone_preserves_init(self):
        n = Netlist("t")
        clk = n.add_input("clk", clock=True)
        n.add("DFF", name="r0", init=1, D=n.add_input("d"), CK=clk, Q="q")
        assert clone(n).instances["r0"].init == 1

    def test_counts_by_kind(self):
        counts = small_circuit().counts_by_kind()
        assert counts[CellKind.COMB] == 1
        assert counts[CellKind.DFF] == 1


class TestRegisterBanks:
    def test_grouping_by_prefix(self):
        n = Netlist("t")
        clk = n.add_input("clk", clock=True)
        d = n.add_input("d")
        for i in range(4):
            n.add("DFF", name=f"pc/bit[{i}]", D=d, CK=clk, Q=f"pc_q[{i}]")
        n.add("DFF", name="lone", D=d, CK=clk, Q="lone_q")
        banks = dict(iter_register_banks(n))
        assert set(banks) == {"pc", "lone"}
        assert len(banks["pc"]) == 4
        assert len(banks["lone"]) == 1


class TestStatsAndDot:
    def test_stats(self):
        stats = collect_stats(small_circuit())
        assert stats.n_comb == 1
        assert stats.n_dff == 1
        assert stats.total_area == pytest.approx(
            stats.comb_area + stats.seq_area)
        assert stats.cell_histogram == {"NAND2": 1, "DFF": 1}
        assert "small" in stats.describe()

    def test_dot_contains_instances(self):
        dot = netlist_to_dot(small_circuit())
        assert '"g1"' in dot
        assert '"r0"' in dot
        assert dot.startswith("digraph")

    def test_dot_truncation(self):
        n = Netlist("big")
        a = n.add_input("a")
        previous = a
        for i in range(30):
            previous = n.add_gate("INV", [previous], name=f"i{i}")
        dot = netlist_to_dot(n, max_instances=10)
        assert "truncated" in dot
