"""Serial-fabric regression tests: wide-join token retirement and the
environment source domain.

The serial acknowledge discipline went through two broken designs before
the current fired-latch one (see ``repro.desync.network``'s module
docstring); both failed on *wide joins* — one consumer fed by many
producers — by re-arming a producer twice off a single consumer capture.
These tests pin the correct retirement ordering directly on the built
fabric, and a mutation test reintroduces the old (level-raced) arming to
prove ``check_flow_equivalence`` localizes the resulting torn capture to
the join consumer.

The environment source domain is the serial fabric's answer to
input-fed designs whose domains share no fabric edge: without it they
drift apart and no single input wire can serve both (first seen on the
random-netlist corpus).
"""

import pytest

from repro.corpus import generate
from repro.desync import DesyncOptions, HandshakeMode, desynchronize
from repro.desync.network import ENV_BANK
from repro.equiv import check_flow_equivalence, check_flow_equivalence_batch
from repro.sim.simulator import EventSimulator

WIDE_JOIN = "fir10"  # 10 producers -> one join consumer ("acc"),
#                      unbalanced 10-leaf C-tree: tap9's token rides up
#                      to the root, the shape that broke both old designs


def _join_fabric(mode):
    result = desynchronize(generate(WIDE_JOIN), DesyncOptions(mode=mode))
    netlist = result.desync_netlist
    tokens = sorted(name for name in netlist.nets
                    if name.startswith("tok:tap") and name.endswith(">acc"))
    assert len(tokens) == 10
    return result, netlist, tokens


class TestWideJoinRetirement:
    @pytest.mark.parametrize("mode", [HandshakeMode.SERIAL,
                                      HandshakeMode.OVERLAP])
    def test_tokens_retire_once_per_consumer_capture(self, mode):
        result, netlist, tokens = _join_fabric(mode)
        sim = EventSimulator(netlist, initial_inputs={"din": 1},
                             record=tokens + ["lt:acc"])
        sim.run(40_000)
        consumer_pulses = sum(1 for _, value in sim.history["lt:acc"]
                              if value == 1)
        assert consumer_pulses >= 4  # the fabric is alive
        for token in tokens:
            retirements = sum(1 for _, value in sim.history[token]
                              if value == 0)
            # Every producer's token is consumed exactly once per join
            # capture (the overlap protocol's pacing slack allows one
            # in-flight round).  The broken serial designs double-fired
            # the leftover leaf, putting it 2+ rounds ahead.
            assert abs(retirements - consumer_pulses) <= 1, (
                token, retirements, consumer_pulses)

    def test_serial_producers_launch_in_lockstep_with_join(self):
        result, netlist, _ = _join_fabric(HandshakeMode.SERIAL)
        clocks = [f"lt:tap{i}" for i in range(10)] + ["lt:acc"]
        sim = EventSimulator(netlist, initial_inputs={"din": 1},
                             record=clocks)
        sim.run(40_000)
        pulses = {clock: sum(1 for _, value in sim.history[clock]
                             if value == 1) for clock in clocks}
        # Strict serial alternation: every producer fires exactly as
        # often as the join consumer (within the final in-flight round).
        join = pulses["lt:acc"]
        assert join >= 4
        for clock, count in pulses.items():
            assert abs(count - join) <= 1, (clock, count, join)

    def test_old_retirement_order_diverges_at_the_join(self):
        """Reintroduce the pre-fix arming (S = tok OR NOT lt:consumer)
        on the leftover-leaf edge; the flow-equivalence checker must
        localize the torn capture to the join register."""
        result, netlist, _ = _join_fabric(HandshakeMode.SERIAL)
        set_gate = netlist.instances["ack:tap9>acc/set"]
        fired = set_gate.pins["B"]
        assert fired.name == "fired:tap9>acc"
        fired.sinks.remove((set_gate, "B"))
        inverted = netlist.add_gate("INV", [netlist.net("lt:acc")],
                                    name="mut:acc/ltinv")
        set_gate.pins["B"] = inverted
        inverted.sinks.append((set_gate, "B"))
        netlist.invalidate_query_caches()  # direct structural edit

        stimulus = [{"din": cycle % 2} for cycle in range(14)]
        report = check_flow_equivalence(result, cycles=14,
                                        inputs_per_cycle=stimulus)
        assert not report.equivalent
        first = report.divergences[0]
        assert first.register == "acc/b"
        assert first.cycle == 10


class TestEnvironmentDomain:
    def test_serial_input_fed_banks_get_env_edges(self):
        result = desynchronize(generate("rnd8s3"),
                               DesyncOptions(mode=HandshakeMode.SERIAL))
        network = result.network
        env_edges = [edge for edge in network.delay_plans
                     if edge[0] == ENV_BANK]
        assert env_edges, "input-fed design must grow environment edges"
        assert ENV_BANK in network.controllers
        netlist = result.desync_netlist
        for _, bank in env_edges:
            assert f"tok:{ENV_BANK}>{bank}/r" in netlist.instances
            assert f"ack:{ENV_BANK}>{bank}/fired" in netlist.instances

    def test_env_controller_is_self_timed_not_a_ring(self):
        # A free-running ring races the ack tree's all-low wave once the
        # tree is deeper than the ring (double launch); the environment
        # controller must instead request off its own acknowledge root.
        result = desynchronize(generate("rnd8s3"),
                               DesyncOptions(mode=HandshakeMode.SERIAL))
        netlist = result.desync_netlist
        assert f"ctl:{ENV_BANK}/selfbuf0" not in netlist.instances
        root = netlist.instances[f"ctl:{ENV_BANK}/root"]
        assert root.pins["R"] is root.pins["A"]

    def test_overlap_mode_builds_no_env_domain(self):
        result = desynchronize(generate("rnd8s3"),
                               DesyncOptions(mode=HandshakeMode.OVERLAP))
        assert ENV_BANK not in result.network.controllers
        assert not any(edge[0] == ENV_BANK
                       for edge in result.network.delay_plans)

    @pytest.mark.parametrize("config", ["rnd8s3", "rnd16s1", "rnd32s10"])
    def test_multi_domain_input_fed_designs_flow_equivalent(self, config):
        # The configs that diverged before the environment domain: their
        # inputs fan out to several controller domains that share no
        # fabric edge, so only environment tokens keep them in step.
        result = desynchronize(generate(config),
                               DesyncOptions(mode=HandshakeMode.SERIAL,
                                             validate_model=False))
        reports = check_flow_equivalence_batch(result, seeds=(0, 1, 2),
                                               cycles=10)
        for seed, report in reports.items():
            assert report.equivalent, (seed, report.divergences[:3])

    def test_registers_only_design_has_no_env_domain(self):
        # No data inputs -> no environment to synchronize with.
        result = desynchronize(generate("counter6"),
                               DesyncOptions(mode=HandshakeMode.SERIAL))
        assert ENV_BANK not in result.network.controllers
