"""Tests for the observability layer: tracing, metrics, VCD export."""

import json
import os
import subprocess
import sys

import pytest

from repro.corpus import generate
from repro.desync import DesyncOptions, HandshakeMode, desynchronize
from repro.desync.pipeline import run_pipeline
from repro.equiv import check_flow_equivalence
from repro.obs import (
    METRICS,
    NULL_SPAN,
    TRACER,
    MetricsRegistry,
    Tracer,
    parse_vcd,
    write_vcd,
)
from repro.obs.probe import HandshakeProbe, probe_handshakes
from repro.petri import simulate
from repro.sim.waves import WaveGroup, Waveform
from repro.stg import linear_pipeline
from repro.utils.errors import ReproError


@pytest.fixture
def tracer():
    """A private, armed tracer (never the process-global one)."""
    tracer = Tracer()
    tracer.start()
    yield tracer
    tracer.stop()


@pytest.fixture
def global_trace():
    """Arm the process-global tracer; always disarm afterwards."""
    TRACER.start()
    try:
        yield TRACER
    finally:
        TRACER.stop()


class TestDisabledTracer:
    def test_disabled_by_default_without_env(self):
        # The suite must run with tracing off unless REPRO_TRACE is set;
        # the zero-overhead claim rests on this default.
        if not os.environ.get("REPRO_TRACE"):
            assert not TRACER.enabled

    def test_span_is_the_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything", key=1) is NULL_SPAN
        assert tracer.span("other") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            assert span.set(a=1) is NULL_SPAN
            assert span.count("n", 5) is NULL_SPAN

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with NULL_SPAN:
                raise ValueError("must propagate")

    def test_count_and_instant_record_nothing(self):
        tracer = Tracer()
        tracer.count("sim.events_popped", 100)
        tracer.instant("replay:proof", replayable=True)
        assert tracer.events() == []

    def test_instrumented_run_emits_nothing_while_disabled(self):
        events_before = len(TRACER.events())
        if TRACER.enabled:
            pytest.skip("REPRO_TRACE armed the global tracer")
        run_pipeline(generate("pipe4x1"))
        assert len(TRACER.events()) == events_before


class TestTracer:
    def test_span_records_complete_event(self, tracer):
        with tracer.span("work", kind="test") as span:
            span.set(extra=3)
            span.count("items", 2)
            span.count("items", 1)
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["args"] == {"kind": "test", "extra": 3, "items": 3}

    def test_nested_count_lands_on_innermost_span(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.count("n", 7)
        inner, outer = tracer.events()
        assert inner["name"] == "inner" and inner["args"]["n"] == 7
        assert "n" not in outer["args"]

    def test_count_outside_spans_is_a_counter_track(self, tracer):
        tracer.count("free", 2)
        tracer.count("free", 3)
        first, second = tracer.events()
        assert first["ph"] == "C" and first["args"] == {"value": 2}
        assert second["args"] == {"value": 5}  # cumulative

    def test_exception_recorded_as_error_attr(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("fails"):
                raise RuntimeError("boom")
        (event,) = tracer.events()
        assert event["args"]["error"] == "RuntimeError"

    def test_instant_event(self, tracer):
        tracer.instant("replay:proof", replayable=False, reason="x")
        (event,) = tracer.events()
        assert event["ph"] == "i" and event["s"] == "t"
        assert event["args"]["reason"] == "x"

    def test_export_envelope_and_write(self, tracer, tmp_path):
        with tracer.span("s"):
            pass
        exported = tracer.export()
        assert set(exported) == {"traceEvents", "displayTimeUnit"}
        path = str(tmp_path / "trace.json")
        tracer.write(path)
        with open(path) as handle:
            assert json.load(handle) == json.loads(json.dumps(exported))

    def test_stop_writes_to_armed_path(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "armed.json")
        tracer.start(path)
        with tracer.span("s"):
            pass
        tracer.stop()
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["traceEvents"][0]["name"] == "s"

    def test_start_clears_previous_recording(self, tracer):
        with tracer.span("old"):
            pass
        tracer.start()
        assert tracer.events() == []


class TestInstrumentation:
    def test_run_pipeline_trace_schema(self, global_trace):
        run_pipeline(generate("pipe4x1"))
        events = global_trace.events()
        names = [event["name"] for event in events]
        assert "pipeline:desync" in names
        passes = [event for event in events
                  if str(event["name"]).startswith("pass:")]
        assert len(passes) >= 4
        # Every complete event is a well-formed Chrome trace event.
        for event in events:
            if event["ph"] == "X":
                assert {"name", "ph", "ts", "dur", "pid",
                        "tid", "args"} <= set(event)
        # The pipeline span opened before its passes (ts ordering).
        pipeline = next(event for event in events
                        if event["name"] == "pipeline:desync")
        assert all(pipeline["ts"] <= p["ts"] for p in passes)

    def test_equivalence_check_spans(self, global_trace):
        result = desynchronize(generate("pipe4x1"),
                               DesyncOptions(mode=HandshakeMode.SERIAL))
        report = check_flow_equivalence(result, cycles=6)
        assert report.equivalent
        names = {event["name"] for event in global_trace.events()}
        assert "equiv:check" in names
        assert "sim:paced-run" in names
        check = next(event for event in global_trace.events()
                     if event["name"] == "equiv:check")
        assert check["args"]["equivalent"] is True

    def test_env_var_activation_in_subprocess(self, tmp_path):
        path = str(tmp_path / "env_trace.json")
        env = dict(os.environ, REPRO_TRACE=path,
                   PYTHONPATH=os.path.join(os.path.dirname(__file__),
                                           os.pardir, "src"))
        code = ("from repro.corpus import generate\n"
                "from repro.desync.pipeline import run_pipeline\n"
                "run_pipeline(generate('pipe4x1'))\n")
        subprocess.run([sys.executable, "-c", code], env=env, check=True,
                       timeout=120)
        with open(path) as handle:
            payload = json.load(handle)
        names = [event["name"] for event in payload["traceEvents"]]
        assert any(name.startswith("pass:") for name in names)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        for value in [5.0, 1.0, 2.0, 3.0, 4.0]:
            registry.histogram("h").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 5}
        assert snapshot["g"] == {"type": "gauge", "value": 2.5}
        assert snapshot["h"]["count"] == 5
        assert snapshot["h"]["min"] == 1.0 and snapshot["h"]["max"] == 5.0
        assert snapshot["h"]["mean"] == 3.0
        assert snapshot["h"]["p50"] == 3.0
        assert snapshot["h"]["p95"] == 5.0

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("name")

    def test_empty_histogram_summary(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary["count"] == 0 and summary["p95"] is None

    def test_snapshot_prefix_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a.one").inc()
        registry.counter("b.two").inc()
        assert list(registry.snapshot(prefix="a.")) == ["a.one"]
        registry.reset()
        assert len(registry) == 0

    def test_global_registry_exists(self):
        assert isinstance(METRICS, MetricsRegistry)


class TestWaveformAt:
    def test_empty_wave_is_none(self):
        assert Waveform("w").at(5.0) is None

    def test_before_first_change_is_none(self):
        wave = Waveform("w")
        wave.add(10.0, 1)
        assert wave.at(9.999) is None

    def test_exact_time_sees_that_change(self):
        wave = Waveform("w")
        wave.add(10.0, 1)
        wave.add(20.0, 0)
        assert wave.at(10.0) == 1
        assert wave.at(20.0) == 0

    def test_between_and_after_hold_last_value(self):
        wave = Waveform("w")
        wave.add(10.0, 1)
        wave.add(20.0, 0)
        assert wave.at(15.0) == 1
        assert wave.at(1e9) == 0

    def test_tie_resolves_to_last_change_at_that_time(self):
        wave = Waveform("w")
        wave.add(10.0, 1)
        wave.add(10.0, 0)  # same-time glitch: last write wins
        assert wave.at(10.0) == 0

    def test_matches_linear_scan_on_dense_wave(self):
        wave = Waveform("w")
        for k in range(50):
            wave.add(float(k), k % 2)
        for probe in [0.0, 0.5, 7.0, 48.9, 49.0, 60.0]:
            expected = None
            for time, value in wave.changes:
                if time <= probe:
                    expected = value
            assert wave.at(probe) == expected


class TestVcd:
    def _figure3_group(self) -> tuple[WaveGroup, float]:
        model = linear_pipeline(["A", "B", "C", "D"], stage_delay=800.0,
                                controller_delay=60.0)
        trace = simulate(model, rounds=8)
        group = WaveGroup.from_transitions(
            [(event.time, event.transition) for event in trace.events],
            initial={"A": 1, "B": 0, "C": 1, "D": 0})
        return group, trace.horizon

    def test_round_trip_figure3_pipeline(self, tmp_path):
        group, _horizon = self._figure3_group()
        path = str(tmp_path / "fig3.vcd")
        assert write_vcd(path, group, module="fig3") == path
        with open(path) as handle:
            parsed = parse_vcd(handle.read())
        assert parsed.module == "fig3"
        assert parsed.timescale == "1ps"
        assert set(parsed.group.waves) == set(group.waves)
        for name, wave in group.waves.items():
            assert parsed.group.wave(name).changes == [
                (float(round(time)), value)
                for time, value in wave.changes], name

    def test_header_and_dumpvars_shape(self, tmp_path):
        group = WaveGroup()
        group.wave("a").add(0.0, 1)
        group.wave("a").add(5.0, 0)
        group.wave("b").add(3.0, 1)
        path = str(tmp_path / "x.vcd")
        write_vcd(path, group, comment="unit test")
        with open(path) as handle:
            text = handle.read()
        assert "$comment unit test $end" in text
        assert "$timescale 1ps $end" in text
        assert "$scope module top $end" in text
        assert text.count("$var wire 1") == 2
        # t=0 values live in $dumpvars ('x' for the not-yet-driven b)...
        dump = text.split("$dumpvars")[1].split("$end")[0].split()
        assert sorted(dump) == ["1!", 'x"']
        # ...and no redundant "#0" block is emitted.
        assert "#0" not in text
        assert "#3" in text and "#5" in text

    def test_history_dict_source(self, tmp_path):
        history = {"n1": [(0.0, 1), (100.0, 0)], "n2": [(50.0, 1)]}
        path = str(tmp_path / "h.vcd")
        write_vcd(path, history)
        with open(path) as handle:
            parsed = parse_vcd(handle.read())
        assert parsed.group.wave("n2").changes == [(50.0, 1)]

    def test_unsupported_timescale_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="timescale"):
            write_vcd(str(tmp_path / "x.vcd"), WaveGroup(), timescale="2ps")

    def test_unknown_order_name_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="unknown signal"):
            write_vcd(str(tmp_path / "x.vcd"), WaveGroup(), order=["ghost"])

    def test_whitespace_name_rejected(self, tmp_path):
        group = WaveGroup()
        group.wave("bad name").add(0.0, 1)
        with pytest.raises(ReproError, match="whitespace"):
            write_vcd(str(tmp_path / "x.vcd"), group)

    def test_timescale_scaling(self, tmp_path):
        group = WaveGroup()
        group.wave("a").add(3000.0, 1)  # 3000 ps = 3 units at 1ns
        path = str(tmp_path / "ns.vcd")
        write_vcd(path, group, timescale="1ns")
        with open(path) as handle:
            text = handle.read()
        assert "#3" in text
        parsed = parse_vcd(text)
        assert parsed.group.wave("a").changes == [(3000.0, 1)]

    def test_dump_vcd_on_desync_result(self, tmp_path):
        result = desynchronize(generate("pipe4x1"))
        path = str(tmp_path / "fabric.vcd")
        assert result.dump_vcd(path, rounds=4) == path
        with open(path) as handle:
            parsed = parse_vcd(handle.read())
        # The fabric's local latch clocks are in the dump and they tick.
        clocks = [name for name in parsed.group.waves
                  if name.startswith("lt:")]
        assert clocks
        assert any(parsed.group.wave(name).changes for name in clocks)


class TestHandshakeProbe:
    def test_probe_collects_fabric_metrics(self):
        result = desynchronize(generate("pipe4x1"))
        registry = MetricsRegistry()
        snapshot = probe_handshakes(result, rounds=6, registry=registry)
        assert snapshot["handshake.requests"]["value"] > 0
        assert snapshot["handshake.captures"]["value"] > 0
        assert snapshot["handshake.latency_ps"]["count"] > 0
        assert snapshot["handshake.latency_ps"]["min"] >= 0
        in_flight = [name for name in snapshot
                     if name.startswith("handshake.tokens_in_flight.")]
        assert in_flight
        # The probe writes into the passed registry, not the global one.
        assert "handshake.requests" in registry

    def test_record_nets_exist_in_fabric(self):
        result = desynchronize(generate("pipe4x1"))
        probe = HandshakeProbe(result.clustering, result.desync_netlist)
        assert probe.record_nets
        assert all(name in result.desync_netlist.nets
                   for name in probe.record_nets)


class TestDifferentialDumps:
    def test_mismatch_dumps_vcd_and_report_lists_it(self, tmp_path):
        from repro.testing.differential import run_differential

        netlist = generate("pipe4x1")

        def broken(net, stimulus):
            from repro.testing.differential import RUNNERS
            run = RUNNERS["event"](net, stimulus)
            for stream in run.captures.values():
                if stream:
                    stream[-1] = 0 if stream[-1] else 1
                    break
            return run

        report = run_differential(netlist, cycles=4,
                                  backends=("event", "broken"),
                                  runners={"broken": broken},
                                  minimize=False,
                                  dump_dir=str(tmp_path))
        assert not report.ok
        assert report.dumps
        for path in report.dumps:
            assert os.path.exists(path)
        vcds = [path for path in report.dumps if path.endswith(".vcd")]
        assert vcds
        with open(vcds[0]) as handle:
            parsed = parse_vcd(handle.read())
        assert parsed.group.waves
        assert any(f"dumped: {path}" in report.describe()
                   for path in report.dumps)

    def test_clean_run_dumps_nothing(self, tmp_path):
        from repro.testing.differential import run_differential

        report = run_differential(generate("pipe4x1"), cycles=4,
                                  dump_dir=str(tmp_path))
        assert report.ok and not report.dumps
        assert not os.listdir(str(tmp_path))


class TestWorkerTraceHandoff:
    """The disarm/ingest pair that carries spans across sweep shards."""

    def test_disarm_forgets_everything(self, tmp_path):
        tracer = Tracer()
        tracer.start(str(tmp_path / "parent.json"))
        with tracer.span("inherited"):
            pass
        tracer.disarm()
        assert not tracer.enabled
        assert tracer.path is None
        assert tracer.events() == []
        # Nothing was written: the worker must not clobber the parent's
        # armed output file.
        assert not (tmp_path / "parent.json").exists()

    def test_ingest_relabels_pid_per_shard(self):
        parent, worker = Tracer(), Tracer()
        parent.start()
        worker.start()
        with worker.span("cell", config="fir8"):
            pass
        shipped = worker.events()
        assert parent.ingest(shipped, pid=7) == len(shipped)
        merged = [e for e in parent.events() if e["name"] == "cell"]
        assert merged and all(e["pid"] == 7 for e in merged)
        # The worker's own record is untouched (pid stays local).
        assert all(e["pid"] == 1 for e in worker.events())

    def test_ingest_is_inert_while_disabled(self):
        parent = Tracer()
        assert parent.ingest([{"name": "x", "ph": "i"}], pid=2) == 0
        assert parent.events() == []


class TestSharedCompileMemo:
    """Fingerprint-keyed cross-netlist artifact reuse (sweep workers)."""

    def test_fingerprint_identifies_structure_not_name(self):
        from repro.corpus import fir_filter
        first = fir_filter(taps=5, name="one")
        second = fir_filter(taps=5, name="two")
        assert first.fingerprint() == second.fingerprint()
        assert first.fingerprint() != fir_filter(taps=6).fingerprint()

    def test_fingerprint_tracks_mutation(self):
        from repro.corpus import fir_filter
        netlist = fir_filter(taps=5)
        before = netlist.fingerprint()
        netlist.add_gate("INV", [netlist.net("din")], name="extra")
        assert netlist.fingerprint() != before

    def test_shared_memo_reuses_across_identical_netlists(self):
        from repro.corpus import fir_filter
        from repro.netlist import install_shared_memo
        calls = []
        previous = install_shared_memo({})
        try:
            one = fir_filter(taps=5).memo(
                "artifact", lambda: calls.append(1) or "compiled",
                shared=True)
            two = fir_filter(taps=5).memo(
                "artifact", lambda: calls.append(2) or "recompiled",
                shared=True)
        finally:
            install_shared_memo(previous)
        assert one == two == "compiled"
        assert calls == [1]  # the second netlist hit the shared cache

    def test_unshared_memo_stays_per_netlist(self):
        from repro.corpus import fir_filter
        from repro.netlist import install_shared_memo
        previous = install_shared_memo({})
        try:
            one = fir_filter(taps=5).memo("artifact", lambda: "a")
            two = fir_filter(taps=5).memo("artifact", lambda: "b")
        finally:
            install_shared_memo(previous)
        assert (one, two) == ("a", "b")
