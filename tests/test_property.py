"""Property-based tests (hypothesis) on core invariants.

* marked-graph token conservation and confluence;
* flow equivalence of randomly generated synchronous circuits;
* STG pattern validity for arbitrary latch chains.
"""

from hypothesis import given, settings, strategies as st

from repro.desync import DesyncOptions, HandshakeMode, desynchronize
from repro.equiv import check_flow_equivalence
from repro.netlist import Netlist
from repro.petri import MarkedGraph, cycle_time, simulate
from repro.stg import Parity, linear_pipeline
from repro.utils.errors import FlowEquivalenceError


@st.composite
def token_rings(draw):
    """A ring of 2-6 transitions with 1-3 tokens and random delays."""
    size = draw(st.integers(2, 6))
    delays = [draw(st.floats(1.0, 100.0)) for _ in range(size)]
    token_edges = draw(st.lists(st.integers(0, size - 1), min_size=1,
                                max_size=3, unique=True))
    graph = MarkedGraph("ring")
    for index, delay in enumerate(delays):
        graph.add_transition(f"t{index}", delay=delay)
    for index in range(size):
        graph.connect(f"t{index}", f"t{(index + 1) % size}",
                      tokens=1 if index in token_edges else 0)
    return graph


class TestMarkedGraphProperties:
    @given(token_rings())
    @settings(max_examples=40, deadline=None)
    def test_firing_conserves_ring_tokens(self, graph):
        marking = graph.marking()
        total = sum(marking.values())
        for _ in range(10):
            enabled = graph.enabled_transitions(marking)
            if not enabled:
                break
            marking = graph.fire(marking, enabled[0])
            assert sum(marking.values()) == total

    @given(token_rings())
    @settings(max_examples=30, deadline=None)
    def test_simulated_period_matches_max_cycle_ratio(self, graph):
        # With k tokens in flight the inter-firing intervals are
        # k-periodic, so average over a multiple of lcm(1..3) intervals.
        analysis = cycle_time(graph)
        trace = simulate(graph, rounds=11)
        name = next(iter(graph.transitions))
        measured = trace.steady_period(name, settle=4)  # 6 tail intervals
        assert abs(measured - analysis.cycle_time) <= max(
            1e-6, 0.02 * analysis.cycle_time)

    @given(token_rings())
    @settings(max_examples=30, deadline=None)
    def test_liveness_iff_no_tokenfree_cycle(self, graph):
        # Construction guarantees >= 1 token on the single ring cycle.
        assert graph.is_live()


class TestPatternProperties:
    @given(st.integers(2, 6), st.sampled_from(list(Parity)),
           st.floats(0.0, 2000.0))
    @settings(max_examples=25, deadline=None)
    def test_pipeline_models_always_valid(self, length, first, delay):
        names = [f"L{i}" for i in range(length)]
        model = linear_pipeline(names, first_parity=first,
                                stage_delay=delay, controller_delay=10.0)
        model.check_model()
        assert cycle_time(model).cycle_time > 0


@st.composite
def random_sync_circuits(draw):
    """A random synchronous netlist: 2-5 registers, random 2-input CL.

    Every register's D input is a random function of register outputs,
    so the circuit is self-contained (no data inputs) and its dynamics
    exercise arbitrary feedback structures, including SCCs.
    """
    n_regs = draw(st.integers(2, 5))
    netlist = Netlist("rand")
    clk = netlist.add_input("clk", clock=True)
    outputs = [netlist.net(f"q{i}") for i in range(n_regs)]
    gates = ["AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2"]
    for i in range(n_regs):
        cell = draw(st.sampled_from(gates))
        a = outputs[draw(st.integers(0, n_regs - 1))]
        b = outputs[draw(st.integers(0, n_regs - 1))]
        if a is b:
            data = netlist.add_gate("INV", [a], name=f"g{i}")
        else:
            data = netlist.add_gate(cell, [a, b], name=f"g{i}")
        init = draw(st.integers(0, 1))
        netlist.add("DFF", name=f"r{i}/b", init=init, D=data, CK=clk,
                    Q=outputs[i])
    netlist.add_output(outputs[-1].name)
    netlist.validate()
    return netlist


class TestFlowEquivalenceProperty:
    """The paper's theorem, sampled over random circuits: the
    de-synchronized netlist is flow-equivalent to the synchronous one."""

    @given(random_sync_circuits())
    @settings(max_examples=10, deadline=None)
    def test_overlap_mode(self, netlist):
        # The overlap protocol carries relative-timing obligations (as in
        # the paper, where commercial signoff discharges them): either
        # the circuit is flow-equivalent, or the violation surfaces — as
        # a divergence the flow's own hold checker flags, or as a stalled
        # handshake the equivalence harness reports — and falling back to
        # serial mode restores equivalence.
        cycles = 16
        result = desynchronize(netlist, DesyncOptions(
            mode=HandshakeMode.OVERLAP, validate_model=False))
        violated = False
        try:
            report = check_flow_equivalence(result, cycles=cycles)
        except FlowEquivalenceError:
            violated = True   # stall: captures never completed
        else:
            if not report.equivalent:
                violated = True
                # The checker's window must cover every compared capture:
                # a race can first bite at any cycle up to the last one.
                checks = result.verify_hold(rounds=cycles + 4,
                                            use_model=False)
                assert any(not check.ok for check in checks), (
                    report.divergences[:3])
        if violated:
            serial = desynchronize(netlist, DesyncOptions(
                mode=HandshakeMode.SERIAL, validate_model=False))
            check_flow_equivalence(serial, cycles=12).assert_ok()

    @given(random_sync_circuits())
    @settings(max_examples=6, deadline=None)
    def test_serial_mode(self, netlist):
        result = desynchronize(netlist, DesyncOptions(
            mode=HandshakeMode.SERIAL, validate_model=False))
        report = check_flow_equivalence(result, cycles=12)
        assert report.equivalent, report.divergences[:3]

    def test_hold_window_covers_compared_cycles(self):
        # Regression: this circuit's overlap-mode race first corrupts a
        # capture around cycle 15, so a 10-round hold check reports all
        # margins ok while flow equivalence over 16 cycles fails.  The
        # checker must see it once its window covers the compared range.
        netlist = Netlist("race")
        clk = netlist.add_input("clk", clock=True)
        outputs = [netlist.net(f"q{i}") for i in range(4)]
        netlist.add_gate("INV", [outputs[2]], name="g0")
        netlist.add_gate("NOR2", [outputs[1], outputs[3]], name="g1")
        netlist.add_gate("XNOR2", [outputs[0], outputs[2]], name="g2")
        netlist.add_gate("INV", [outputs[2]], name="g3")
        for i, init in enumerate((1, 0, 1, 1)):
            netlist.add("DFF", name=f"r{i}/b", init=init,
                        D=netlist.nets[f"g{i}"], CK=clk, Q=outputs[i])
        netlist.add_output(outputs[-1].name)
        netlist.validate()
        cycles = 16
        result = desynchronize(netlist, DesyncOptions(
            mode=HandshakeMode.OVERLAP, validate_model=False))
        report = check_flow_equivalence(result, cycles=cycles)
        # The race is deterministic today; if a flow change makes this
        # circuit equivalent, pick a new witness rather than letting the
        # hold-window property go untested.
        assert not report.equivalent
        assert all(check.ok for check in result.verify_hold(use_model=False))
        checks = result.verify_hold(rounds=cycles + 4, use_model=False)
        assert any(not check.ok for check in checks), report.divergences[:3]
