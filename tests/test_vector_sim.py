"""Tests for the lane-parallel code-generated cycle engines.

Three layers of evidence that the vector engines implement exactly the
scalar cycle semantics:

* **cell-level** — every library cell evaluated over *all* ternary input
  combinations, one combination per lane, against
  :meth:`Cell.eval_ternary` (this is the contract the code generator
  must honour, including the generic possibility-set path used by
  MUX2/AOI21/OAI21);
* **netlist-level** — lane demux equals N independent scalar runs over
  the full corpus registry, for both the DFF and the two-phase latch
  engines;
* **harness-level** — the batched differential and flow-equivalence
  APIs agree with their scalar counterparts and still catch injected
  faults.
"""

import itertools

import pytest

from repro.corpus import generate, names
from repro.desync import DesyncOptions, HandshakeMode, desynchronize
from repro.desync.latchify import latchify
from repro.equiv import (
    check_flow_equivalence,
    check_flow_equivalence_batch,
    reference_streams,
    reference_streams_batch,
)
from repro.netlist.cells import GENERIC, CellKind
from repro.netlist.core import Netlist
from repro.sim import (
    CYCLE_BACKENDS,
    HAVE_NUMPY,
    LANES_ENV,
    CycleSimulator,
    LatchCycleSimulator,
    NpVectorCycleSimulator,
    NpVectorLatchCycleSimulator,
    VectorCycleSimulator,
    VectorLatchCycleSimulator,
    make_cycle_simulator,
    pack_lanes,
    pack_stimuli,
    resolve_lanes,
    unpack_lanes,
)
from repro.sim.lanes import TUNING_TABLE
from repro.testing import (
    RUNNERS,
    random_stimulus,
    run_differential,
    run_differential_batch,
    vector_runs,
)
from repro.utils.errors import SimulationError

COMB_CELLS = [cell for cell in GENERIC.cells.values()
              if cell.kind is CellKind.COMB]

#: Both word backends where numpy is available; the bigint engine is
#: always present, the bit-plane engine is a soft dependency.
WORD_SIMS = [VectorCycleSimulator] + (
    [NpVectorCycleSimulator] if HAVE_NUMPY else [])


class TestPacking:
    def test_roundtrip(self):
        values = [1, 0, None, 1, None, 0, 1]
        assert unpack_lanes(pack_lanes(values), len(values)) == values

    def test_known_invariant(self):
        value, known = pack_lanes([None, 1, 0])
        assert value & ~known == 0
        assert value == 0b010 and known == 0b110

    def test_pack_stimuli_lane_major(self):
        packed = pack_stimuli([[{"a": 1}, {"a": 0}],
                               [{"a": 0}, {"a": None}]])
        assert packed == [{"a": (0b01, 0b11)}, {"a": (0b00, 0b01)}]

    def test_pack_stimuli_rejects_ragged(self):
        with pytest.raises(SimulationError, match="differing lengths"):
            pack_stimuli([[{"a": 1}], [{"a": 1}, {"a": 0}]])

    def test_pack_stimuli_rejects_mismatched_ports(self):
        with pytest.raises(SimulationError, match="different ports"):
            pack_stimuli([[{"a": 1}], [{"b": 1}]])


class TestCellLaneSemantics:
    """Per-lane X propagation must match eval_ternary on every cell."""

    @pytest.mark.parametrize("sim_cls", WORD_SIMS,
                             ids=lambda c: c.__name__)
    @pytest.mark.parametrize("cell", COMB_CELLS, ids=lambda c: c.name)
    def test_all_ternary_combinations(self, cell, sim_cls):
        netlist = Netlist("t")
        for j in range(cell.n_inputs):
            netlist.add_input(f"i{j}")
        out = netlist.add_gate(cell.name,
                               [f"i{j}" for j in range(cell.n_inputs)],
                               name="g")
        netlist.add_output(out.name)
        combos = list(itertools.product((0, 1, None),
                                        repeat=cell.n_inputs))
        sim = sim_cls(netlist, lanes=len(combos))
        for j in range(cell.n_inputs):
            sim.drive_lanes(f"i{j}", [combo[j] for combo in combos])
        sim.evaluate()
        got = unpack_lanes(sim.packed_value(out.name), len(combos))
        assert got == [cell.eval_ternary(list(combo)) for combo in combos]

    @pytest.mark.parametrize("tie", ["TIE0", "TIE1"])
    def test_tie_cells(self, tie):
        netlist = Netlist("t")
        out = netlist.add_gate(tie, [], name="g")
        netlist.add_output(out.name)
        sim = VectorCycleSimulator(netlist, lanes=3)
        sim.evaluate()
        expected = GENERIC[tie].tt & 1
        assert unpack_lanes(sim.packed_value(out.name), 3) == [expected] * 3

    def test_undriven_inputs_stay_x(self):
        netlist = Netlist("t")
        netlist.add_input("a")
        netlist.add_input("b")
        out = netlist.add_gate("AND2", ["a", "b"], name="g")
        sim = VectorCycleSimulator(netlist, lanes=2)
        sim.drive_lanes("a", [0, 1])  # b undriven: X in every lane
        sim.evaluate()
        assert unpack_lanes(sim.packed_value(out.name), 2) == [0, None]


class TestCorpusLaneDemux:
    """Lane demux == N independent scalar runs, whole registry."""

    SEEDS = (11, 22, 33, 44)
    CYCLES = 12

    @pytest.mark.parametrize("config", names())
    def test_matches_independent_cycle_runs(self, config):
        netlist = generate(config)
        stimuli = [random_stimulus(netlist, self.CYCLES, seed)
                   for seed in self.SEEDS]
        vector = VectorCycleSimulator(netlist, lanes=len(stimuli))
        vector.run(self.CYCLES, pack_stimuli(stimuli))
        for lane, stimulus in enumerate(stimuli):
            scalar = CycleSimulator(netlist)
            scalar.run(self.CYCLES, stimulus)
            assert vector.lane_captures(lane) == {
                name: list(stream)
                for name, stream in scalar.captures.items()}
            for ff in netlist.dff_instances():
                net = ff.output_net().name
                assert vector.lane_value(net, lane) == scalar.values[net]

    def test_more_stimuli_than_lanes(self):
        # 5 stimuli through 2-lane passes: 3 passes, same demux.
        netlist = generate("crc5")
        stimuli = [random_stimulus(netlist, 8, seed) for seed in range(5)]
        runs = vector_runs(netlist, stimuli, lanes=2)
        assert len(runs) == 5
        for stimulus, run in zip(stimuli, runs):
            scalar = CycleSimulator(netlist)
            scalar.run(8, stimulus)
            assert run.captures == {name: list(stream)
                                    for name, stream in
                                    scalar.captures.items()}
            assert run.register_toggles == {
                ff.name: scalar.toggle_counts.get(ff.output_net().name, 0)
                for ff in netlist.dff_instances()}

    def test_batched_reference_streams(self):
        netlist = generate("lfsr8")
        stimuli = [random_stimulus(netlist, 10, seed) for seed in (1, 2, 3)]
        batched = reference_streams_batch(netlist, 10, stimuli, lanes=2)
        scalar = [reference_streams(netlist, 10, inputs_per_cycle=stimulus)
                  for stimulus in stimuli]
        assert batched == scalar


class TestVectorLatchSimulator:
    """Two-phase behaviour must match LatchCycleSimulator per lane."""

    @pytest.mark.parametrize("config", ["pipe4x1", "mult2", "lfsr8",
                                        "diamond2x4"])
    def test_matches_scalar_latch_runs(self, config):
        latched = latchify(generate(config))
        seeds = (5, 6, 7)
        cycles = 10
        stimuli = [random_stimulus(latched, cycles, seed) for seed in seeds]
        vector = VectorLatchCycleSimulator(latched, lanes=len(stimuli))
        vector.run(cycles, pack_stimuli(stimuli))
        for lane, stimulus in enumerate(stimuli):
            scalar = LatchCycleSimulator(latched)
            scalar.run(cycles, stimulus)
            assert vector.lane_captures(lane) == {
                name: list(stream)
                for name, stream in scalar.captures.items()}

    def test_master_slave_phase_alignment(self):
        # The k-th master capture equals the k-th flip-flop capture of
        # the pre-latchify netlist; slaves trail by half a cycle.
        netlist = generate("counter6")
        latched = latchify(netlist)
        cycles = 8
        ff_sim = VectorCycleSimulator(netlist, lanes=1)
        ff_sim.run(cycles)
        latch_sim = VectorLatchCycleSimulator(latched, lanes=1)
        latch_sim.run(cycles)
        ff_caps = ff_sim.lane_captures(0)
        latch_caps = latch_sim.lane_captures(0)
        for ff in netlist.dff_instances():
            bank, leaf = ff.name.rsplit("/", 1)
            assert latch_caps[f"{bank}.M/{leaf}"] == ff_caps[ff.name]

    def test_rejects_dff_netlists(self):
        with pytest.raises(SimulationError, match="latchify first"):
            VectorLatchCycleSimulator(generate("lfsr8"))

    def test_dff_engine_rejects_latches(self):
        with pytest.raises(SimulationError,
                           match="use VectorLatchCycleSimulator"):
            VectorCycleSimulator(latchify(generate("lfsr8")))


class TestBatchedDifferential:
    def test_sweep_whole_registry(self):
        # The CI batched differential sweep: every corpus configuration,
        # pinned seeds, vector lanes against the scalar cycle engine.
        for config in names():
            reports = run_differential_batch(generate(config),
                                             seeds=range(1, 9), cycles=12)
            assert len(reports) == 8
            for report in reports.values():
                assert report.ok, f"{config}: {report.describe()}"
                assert report.backends == ("cycle", "vector")

    def test_vector_plugs_into_scalar_harness(self):
        report = run_differential(generate("crc5"), cycles=12,
                                  backends=("cycle", "event", "vector"))
        assert report.ok, report.describe()
        assert "vector" in RUNNERS

    def test_fault_localized_and_minimized(self):
        # Corrupt one backend's stream: the batch API must locate the
        # seed and fall back to prefix minimization.
        def corrupted(netlist, stimulus):
            run = RUNNERS["cycle"](netlist, stimulus)
            register = sorted(run.captures)[0]
            if len(run.captures[register]) > 3:
                run.captures[register][3] ^= 1
            return run

        reports = run_differential_batch(
            generate("lfsr8"), seeds=(1, 2), cycles=10,
            backends=("bad",), runners={"bad": corrupted})
        for report in reports.values():
            assert not report.ok
            assert report.minimized_cycles == 4
            first = report.mismatches[0]
            assert first.kind == "captures" and first.cycle == 3

    def test_lane_dependent_divergence_not_masked(self):
        # A divergence the single-lane minimization rerun cannot
        # reproduce must stay reported.  Simulated by corrupting the
        # scalar backend and overriding the fallback's "vector" runner
        # with the same corruption: the batched lanes disagree with the
        # scalar run, the single-lane rerun agrees with it.
        def corrupted(netlist, stimulus):
            run = RUNNERS["cycle"](netlist, stimulus)
            register = sorted(run.captures)[0]
            if run.captures[register]:
                run.captures[register][0] ^= 1
            return run

        reports = run_differential_batch(
            generate("lfsr8"), seeds=(1,), cycles=8,
            backends=("bad",),
            runners={"bad": corrupted, "vector": corrupted})
        report = reports[1]
        assert not report.ok  # the batched mismatches survive
        assert report.minimized_cycles is None  # no prefix available

    def test_needs_a_scalar_backend(self):
        from repro.utils.errors import DifferentialError
        with pytest.raises(DifferentialError, match=">= 1 scalar backend"):
            run_differential_batch(generate("crc5"), seeds=(1,),
                                   backends=())

    def test_duplicate_seeds_rejected(self):
        from repro.utils.errors import DifferentialError
        with pytest.raises(DifferentialError, match="duplicate seeds"):
            run_differential_batch(generate("crc5"), seeds=(1, 1, 2))


class TestBatchedFlowEquivalence:
    def test_race_free_fabrics_stay_equivalent(self):
        result = desynchronize(generate("mult2"))
        reports = check_flow_equivalence_batch(result, seeds=(1, 2, 3),
                                               cycles=10,
                                               backend="compiled")
        assert list(reports) == [1, 2, 3]
        assert all(report.equivalent for report in reports.values())

    def test_duplicate_seeds_rejected(self):
        from repro.utils.errors import FlowEquivalenceError
        result = desynchronize(generate("mult2"))
        with pytest.raises(FlowEquivalenceError, match="duplicate seeds"):
            check_flow_equivalence_batch(result, seeds=(1, 1))

    def test_matches_scalar_check_per_seed(self):
        # Same fabric, same seed: the batched report must agree with the
        # scalar check on equivalence and on the located divergences —
        # pipe4x1 under OVERLAP genuinely races under varying stimulus.
        result = desynchronize(generate("pipe4x1"),
                               DesyncOptions(mode=HandshakeMode.OVERLAP))
        seed, cycles = 1, 10
        batched = check_flow_equivalence_batch(result, seeds=(seed,),
                                               cycles=cycles,
                                               backend="compiled")[seed]
        scalar = check_flow_equivalence(
            result, cycles=cycles, backend="compiled",
            inputs_per_cycle=random_stimulus(result.sync_netlist, cycles,
                                             seed))
        assert batched.equivalent == scalar.equivalent
        assert batched.divergences == scalar.divergences


class TestRegistry:
    def test_cycle_backend_registry(self):
        assert CYCLE_BACKENDS["vector"] is VectorCycleSimulator
        assert CYCLE_BACKENDS["vector-latch"] is VectorLatchCycleSimulator
        sim = make_cycle_simulator(generate("lfsr8"), "vector", lanes=4)
        assert isinstance(sim, VectorCycleSimulator) and sim.lanes == 4

    def test_unknown_backend(self):
        with pytest.raises(SimulationError, match="unknown cycle-simulator"):
            make_cycle_simulator(generate("lfsr8"), "verilator")

    def test_bad_lane_count(self):
        with pytest.raises(SimulationError, match="lane count"):
            VectorCycleSimulator(generate("lfsr8"), lanes=0)

    def test_packed_input_validation(self):
        netlist = generate("crc5")
        sim = VectorCycleSimulator(netlist, lanes=2)
        with pytest.raises(SimulationError, match="spills outside"):
            sim.set_inputs({"din": (0b100, 0b111)})
        with pytest.raises(SimulationError, match="value bits in"):
            sim.set_inputs({"din": (0b11, 0b01)})
        with pytest.raises(SimulationError, match="not an input port"):
            sim.set_inputs({"nonexistent": 1})


class TestLaneWidths:
    """Width is a tuning parameter: demux identity must hold at any
    lane count — below, at, and past the 64-bit machine word — for
    both word backends."""

    WIDTHS = (1, 63, 64, 65, 256, 1024)
    CYCLES = 8

    @pytest.mark.parametrize("sim_cls", WORD_SIMS,
                             ids=lambda c: c.__name__)
    @pytest.mark.parametrize("width", WIDTHS)
    def test_demux_identity_at_width(self, width, sim_cls):
        netlist = generate("crc5")
        n = min(4, width)  # occupied lanes; the rest stay X
        stimuli = [random_stimulus(netlist, self.CYCLES, 100 + i)
                   for i in range(n)]
        sim = sim_cls(netlist, lanes=width)
        sim.run(self.CYCLES, pack_stimuli(stimuli))
        for lane, stimulus in enumerate(stimuli):
            scalar = CycleSimulator(netlist)
            scalar.run(self.CYCLES, stimulus)
            assert sim.lane_captures(lane) == {
                name: list(stream)
                for name, stream in scalar.captures.items()}, (width, lane)

    @pytest.mark.parametrize("sim_cls",
                             [VectorLatchCycleSimulator] +
                             ([NpVectorLatchCycleSimulator]
                              if HAVE_NUMPY else []),
                             ids=lambda c: c.__name__)
    @pytest.mark.parametrize("width", (63, 65, 130))
    def test_latch_demux_at_off_word_width(self, width, sim_cls):
        latched = latchify(generate("mult2"))
        stimuli = [random_stimulus(latched, self.CYCLES, 200 + i)
                   for i in range(3)]
        sim = sim_cls(latched, lanes=width)
        sim.run(self.CYCLES, pack_stimuli(stimuli))
        for lane, stimulus in enumerate(stimuli):
            scalar = LatchCycleSimulator(latched)
            scalar.run(self.CYCLES, stimulus)
            assert sim.lane_captures(lane) == {
                name: list(stream)
                for name, stream in scalar.captures.items()}, (width, lane)

    @pytest.mark.parametrize("width", (63, 65, 1024))
    def test_pack_unpack_roundtrip_off_word(self, width):
        values = [(1, 0, None)[i % 3] for i in range(width)]
        assert unpack_lanes(pack_lanes(values), width) == values

    @pytest.mark.parametrize("sim_cls", WORD_SIMS,
                             ids=lambda c: c.__name__)
    def test_spill_validation_off_word(self, sim_cls):
        # At lanes=65 the top lane lives in the second machine word:
        # bit 64 is legal, bit 65 spills.
        sim = sim_cls(generate("crc5"), lanes=65)
        sim.set_inputs({"din": (1 << 64, 1 << 64)})
        assert sim.lane_value("din", 64) == 1
        with pytest.raises(SimulationError, match="spills outside"):
            sim.set_inputs({"din": (0, 1 << 65)})

    def test_reset_reproduces_run(self):
        # One simulator, two identical runs bracketing a reset() —
        # the contract the batch drivers rely on to reuse a compiled
        # engine across stimulus blocks.
        netlist = generate("counter6")
        stimuli = [random_stimulus(netlist, self.CYCLES, 7)]
        sim = VectorCycleSimulator(netlist, lanes=8)
        sim.run(self.CYCLES, pack_stimuli(stimuli))
        first = sim.lane_captures(0)
        sim.reset()
        assert sim.cycles == 0 and all(not caps for caps in
                                       sim.captures.values())
        sim.run(self.CYCLES, pack_stimuli(stimuli))
        assert sim.lane_captures(0) == first


class TestResolveLanes:
    """The lane-width policy: explicit > environment > tuning table."""

    def test_requested_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(LANES_ENV, "128")
        assert resolve_lanes(generate("lfsr8"), requested=7) == 7

    def test_env_overrides_table(self, monkeypatch):
        monkeypatch.setenv(LANES_ENV, "96")
        assert resolve_lanes(generate("lfsr8")) == 96

    def test_env_must_be_positive_integer(self, monkeypatch):
        monkeypatch.setenv(LANES_ENV, "wide")
        with pytest.raises(SimulationError, match=LANES_ENV):
            resolve_lanes()
        monkeypatch.setenv(LANES_ENV, "0")
        with pytest.raises(SimulationError, match="must be >= 1"):
            resolve_lanes()

    def test_table_buckets_by_instance_count(self, monkeypatch):
        monkeypatch.delenv(LANES_ENV, raising=False)
        small = resolve_lanes(generate("lfsr8"))   # 9 instances
        large = resolve_lanes(generate("mult8"))   # 352 instances
        assert small == dict(TUNING_TABLE)[48]
        assert large == dict(TUNING_TABLE)[None]
        assert resolve_lanes() == dict(TUNING_TABLE)[None]

    def test_requested_validated(self):
        with pytest.raises(SimulationError, match="lane count"):
            resolve_lanes(requested=0)

    def test_default_flows_into_engines(self, monkeypatch):
        monkeypatch.delenv(LANES_ENV, raising=False)
        netlist = generate("lfsr8")
        assert VectorCycleSimulator(netlist).lanes == \
            resolve_lanes(netlist)
        monkeypatch.setenv(LANES_ENV, "80")
        assert VectorCycleSimulator(netlist).lanes == 80


class TestNpBackend:
    """Registry wiring, the soft numpy dependency, and the kernel
    cache shared by every compiled engine."""

    def test_registry(self):
        assert CYCLE_BACKENDS["vector-np"] is NpVectorCycleSimulator
        assert CYCLE_BACKENDS["vector-np-latch"] is \
            NpVectorLatchCycleSimulator
        if HAVE_NUMPY:
            sim = make_cycle_simulator(generate("lfsr8"), "vector-np",
                                       lanes=5)
            assert isinstance(sim, NpVectorCycleSimulator)
            assert sim.lanes == 5

    def test_missing_numpy_is_a_clear_error(self, monkeypatch):
        from repro.sim import vector_np
        monkeypatch.setattr(vector_np, "_np", None)
        with pytest.raises(SimulationError, match="requires numpy"):
            NpVectorCycleSimulator(generate("lfsr8"), lanes=4)

    def test_kernel_cache_hits_across_equal_netlists(self):
        from repro.obs import METRICS
        hits = METRICS.counter("sim.vector.kernel_cache_hits")
        misses = METRICS.counter("sim.vector.kernel_cache_misses")
        base_hits, base_misses = hits.value, misses.value
        # An unusual width keeps this (fingerprint, lanes) pair out of
        # every other test's cache traffic.
        VectorCycleSimulator(generate("counter6"), lanes=41)
        assert misses.value == base_misses + 1
        assert hits.value == base_hits
        # A fresh Netlist object with the same fingerprint must hit.
        VectorCycleSimulator(generate("counter6"), lanes=41)
        assert hits.value == base_hits + 1

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_np_differential_runner_registered(self):
        assert "vector-np" in RUNNERS
        report = run_differential(generate("crc5"), cycles=10,
                                  backends=("cycle", "vector-np"))
        assert report.ok, report.describe()
