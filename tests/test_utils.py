"""Tests for repro.utils: naming helpers and the error hierarchy."""

import pytest

from repro.utils import NameScope, bit_name, join, split_bit
from repro.utils.errors import (
    AssemblerError,
    NetlistError,
    PetriError,
    ReproError,
    VerilogError,
)
from repro.utils.naming import escape_verilog, is_simple_identifier


class TestNaming:
    def test_bit_name(self):
        assert bit_name("data", 3) == "data[3]"

    def test_split_bit_roundtrip(self):
        assert split_bit(bit_name("bus", 17)) == ("bus", 17)

    def test_split_bit_plain(self):
        assert split_bit("clk") == ("clk", None)

    def test_split_bit_nested(self):
        base, index = split_bit("alu/sum[4]")
        assert base == "alu/sum"
        assert index == 4

    def test_join(self):
        assert join("cpu", "alu", "carry") == "cpu/alu/carry"

    def test_join_skips_empty(self):
        assert join("", "alu") == "alu"

    def test_is_simple_identifier(self):
        assert is_simple_identifier("n_42")
        assert not is_simple_identifier("a/b")
        assert not is_simple_identifier("d[0]")
        assert not is_simple_identifier("9abc")

    def test_escape_verilog_plain(self):
        assert escape_verilog("foo") == "foo"

    def test_escape_verilog_hierarchical(self):
        escaped = escape_verilog("a/b[0]")
        assert escaped.startswith("\\")
        assert escaped.endswith(" ")


class TestNameScope:
    def test_unique_first_use(self):
        scope = NameScope()
        assert scope.unique("u") == "u"

    def test_unique_collision(self):
        scope = NameScope()
        scope.unique("u")
        assert scope.unique("u") == "u_1"
        assert scope.unique("u") == "u_2"

    def test_reserve(self):
        scope = NameScope()
        scope.reserve("taken")
        assert "taken" in scope
        assert scope.unique("taken") == "taken_1"

    def test_prepopulated(self):
        scope = NameScope({"a", "b"})
        assert scope.unique("a") == "a_1"
        assert scope.unique("c") == "c"


class TestErrors:
    def test_hierarchy(self):
        for error_type in (NetlistError, PetriError, VerilogError,
                           AssemblerError):
            assert issubclass(error_type, ReproError)

    def test_verilog_error_location(self):
        error = VerilogError("bad token", line=3, column=7)
        assert "3:7" in str(error)
        assert error.line == 3

    def test_assembler_error_location(self):
        error = AssemblerError("unknown mnemonic", line=12)
        assert "12" in str(error)
