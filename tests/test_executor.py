"""The crash-safe, resumable cell executor.

Every hardening path of :func:`repro.faults.executor.run_cells` under
real process-pool conditions: clean completion, worker exceptions with
bounded retry and quarantine, hard worker crashes (``os._exit``) that
break the pool, per-cell wall-clock timeouts that kill wedged workers
without losing innocent bystanders, and the JSONL checkpoint whose
cell-exact resume (torn final line included) makes an interrupted
campaign restartable.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.faults.executor import (
    CELL_RETRIES_ENV,
    CELL_TIMEOUT_ENV,
    ExecutorPolicy,
    cell_retries,
    cell_timeout,
    load_checkpoint,
    run_cells,
)
from repro.utils.errors import ExecutorError

FAST = ExecutorPolicy(jobs=2, retries=1, backoff=0.01)


# -- module-level workers (fork pools need picklable callables) --------

def double(payload):
    return payload * 2


def boom(payload):
    raise ValueError(f"cell {payload} is broken")


def fail_until_marker(payload):
    """Fails on the first run, succeeds once its marker file exists."""
    marker, value = payload
    if os.path.exists(marker):
        return value
    with open(marker, "w"):
        pass
    raise RuntimeError("first attempt always fails")


def crash_or_double(payload):
    if payload == "crash":
        os._exit(13)  # hard death: BrokenProcessPool, not an exception
    return payload * 2


def sleep_then_return(payload):
    seconds, value = payload
    time.sleep(seconds)
    return value


class TestRunCells:
    def test_all_ok(self):
        tasks = [(f"c{i}", i) for i in range(5)]
        outcomes, stats = run_cells(tasks, double, FAST)
        assert {key: o.value for key, o in outcomes.items()} == \
            {f"c{i}": 2 * i for i in range(5)}
        assert all(o.status == "ok" and o.attempts == 1
                   for o in outcomes.values())
        assert stats.completed == 5
        assert not stats.quarantined

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ExecutorError, match="duplicate"):
            run_cells([("a", 1), ("a", 2)], double, FAST)

    def test_worker_error_quarantined_after_retries(self):
        outcomes, stats = run_cells([("bad", 1)], boom, FAST)
        outcome = outcomes["bad"]
        assert outcome.status == "quarantined"
        assert outcome.attempts == 2  # first run + one retry
        assert "ValueError: cell 1 is broken" in outcome.error
        assert stats.retries == 1
        assert stats.quarantined == ["bad"]

    def test_retry_then_success(self, tmp_path):
        marker = str(tmp_path / "marker")
        outcomes, stats = run_cells(
            [("flaky", (marker, 7))], fail_until_marker,
            ExecutorPolicy(jobs=1, retries=2, backoff=0.01))
        outcome = outcomes["flaky"]
        assert outcome.status == "ok"
        assert outcome.value == 7
        assert outcome.attempts == 2
        assert stats.retries == 1

    def test_crash_breaks_pool_and_recovers(self):
        tasks = [("crash", "crash")] + [(f"c{i}", i) for i in range(4)]
        outcomes, stats = run_cells(
            tasks, crash_or_double,
            ExecutorPolicy(jobs=2, retries=1, backoff=0.01))
        assert outcomes["crash"].status == "quarantined"
        assert "crashed" in outcomes["crash"].error
        assert outcomes["crash"].attempts == 2
        for i in range(4):  # bystanders all completed despite the crash
            assert outcomes[f"c{i}"].status == "ok"
            assert outcomes[f"c{i}"].value == 2 * i
        assert stats.crashes >= 1
        assert stats.quarantined == ["crash"]

    def test_timeout_kills_wedged_cell_keeps_bystander(self):
        tasks = [("wedged", (30.0, None)), ("quick", (0.0, 5))]
        outcomes, stats = run_cells(
            tasks, sleep_then_return,
            ExecutorPolicy(jobs=2, timeout=0.3, retries=1, backoff=0.01))
        assert outcomes["quick"].status == "ok"
        assert outcomes["quick"].value == 5
        wedged = outcomes["wedged"]
        assert wedged.status == "quarantined"
        assert "timed out after 0.3s" in wedged.error
        assert wedged.attempts == 2
        assert stats.timeouts == 2  # both attempts expired

    def test_checkpoint_written_per_cell(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        run_cells([("a", 1), ("b", 2)], double,
                  ExecutorPolicy(jobs=1, checkpoint=path))
        lines = [json.loads(line) for line in open(path)]
        assert {entry["key"]: entry["value"] for entry in lines} == \
            {"a": 2, "b": 4}
        assert all(entry["status"] == "ok" for entry in lines)

    def test_resume_skips_completed_cells(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        run_cells([("a", 1), ("b", 2)], double,
                  ExecutorPolicy(jobs=1, checkpoint=path))
        # Resume with a worker that would fail: restored cells must not
        # re-run; only the new cell executes.
        outcomes, stats = run_cells(
            [("a", 1), ("b", 2), ("c", (str(tmp_path / "m"), 9))],
            fail_until_marker,
            ExecutorPolicy(jobs=1, retries=2, backoff=0.01,
                           checkpoint=path, resume=True))
        assert stats.resumed == 2
        assert outcomes["a"].from_checkpoint
        assert outcomes["a"].value == 2
        assert outcomes["b"].value == 4
        assert outcomes["c"].status == "ok"
        assert outcomes["c"].value == 9

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"key": "a", "status": "ok",
                                     "value": 2, "attempts": 1}) + "\n")
            handle.write(json.dumps({"key": "q", "status": "quarantined",
                                     "value": None, "attempts": 3}) + "\n")
            handle.write('{"key": "b", "status"')  # the kill landed here
        restored, duplicates = load_checkpoint(path)
        assert set(restored) == {"a"}  # torn line dropped, quarantined
        assert restored["a"].value == 2  # lines get a fresh chance
        assert duplicates == 0

    def test_duplicated_trailing_line_deduped_keep_last(self, tmp_path):
        # A kill between the fsynced append and the acknowledgement
        # makes the restarted run re-append the same cell: the loader
        # must dedupe by key, keep the last occurrence, and count it.
        path = str(tmp_path / "cells.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"key": "a", "status": "ok",
                                     "value": 2, "attempts": 1}) + "\n")
            handle.write(json.dumps({"key": "b", "status": "ok",
                                     "value": 4, "attempts": 1}) + "\n")
            handle.write(json.dumps({"key": "b", "status": "ok",
                                     "value": 4, "attempts": 2}) + "\n")
        restored, duplicates = load_checkpoint(path)
        assert set(restored) == {"a", "b"}
        assert duplicates == 1
        assert restored["b"].attempts == 2  # keep-last
        # And a resumed run surfaces the count in its summary.
        outcomes, stats = run_cells(
            [("a", 1), ("b", 2)], double,
            ExecutorPolicy(jobs=1, checkpoint=path, resume=True))
        assert stats.resumed == 2
        assert stats.checkpoint_duplicates == 1
        assert stats.as_dict()["checkpoint_duplicates"] == 1

    def test_missing_checkpoint_is_empty(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "nope.jsonl")) == ({}, 0)


class TestPolicyAndEnv:
    def test_policy_validation(self):
        with pytest.raises(ExecutorError, match="jobs"):
            ExecutorPolicy(jobs=0)
        with pytest.raises(ExecutorError, match="retries"):
            ExecutorPolicy(retries=-1)
        with pytest.raises(ExecutorError, match="timeout"):
            ExecutorPolicy(timeout=0.0)
        with pytest.raises(ExecutorError, match="checkpoint"):
            ExecutorPolicy(resume=True)
        with pytest.raises(ExecutorError, match="mutually exclusive"):
            ExecutorPolicy(job_dir="/tmp/jobs", checkpoint="/tmp/c.jsonl")
        with pytest.raises(ExecutorError, match="lease_ttl"):
            ExecutorPolicy(job_dir="/tmp/jobs", lease_ttl=0.0)

    def test_cell_timeout_env(self, monkeypatch):
        monkeypatch.delenv(CELL_TIMEOUT_ENV, raising=False)
        assert cell_timeout() is None
        assert cell_timeout(5.0) == 5.0
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "2.5")
        assert cell_timeout() == 2.5
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "0")
        assert cell_timeout() is None  # <= 0 disables the timeout
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(ExecutorError, match=CELL_TIMEOUT_ENV):
            cell_timeout()

    def test_cell_retries_env(self, monkeypatch):
        monkeypatch.delenv(CELL_RETRIES_ENV, raising=False)
        assert cell_retries() == 2
        assert cell_retries(0) == 0
        monkeypatch.setenv(CELL_RETRIES_ENV, "5")
        assert cell_retries() == 5
        monkeypatch.setenv(CELL_RETRIES_ENV, "-1")
        with pytest.raises(ExecutorError, match=">= 0"):
            cell_retries()
        monkeypatch.setenv(CELL_RETRIES_ENV, "many")
        with pytest.raises(ExecutorError, match=CELL_RETRIES_ENV):
            cell_retries()
