"""Tests for the event-driven and cycle-accurate simulators."""

import pytest

from repro.netlist import Netlist
from repro.sim import (
    CycleSimulator,
    EventSimulator,
    LatchCycleSimulator,
    WaveGroup,
    bits_to_int,
    int_to_bits,
    overlap_intervals,
    settle_combinational,
    to_char,
)
from repro.utils.errors import SimulationError


class TestLogicHelpers:
    def test_to_char(self):
        assert to_char(1) == "1"
        assert to_char(0) == "0"
        assert to_char(None) == "X"

    def test_bits_roundtrip(self):
        assert bits_to_int(int_to_bits(0b1011, 6)) == 0b1011

    def test_bits_with_x(self):
        assert bits_to_int([1, None, 0]) is None


class TestCombinationalSettle:
    def test_and_gate(self):
        n = Netlist("t")
        a, b = n.add_input("a"), n.add_input("b")
        y = n.add_gate("AND2", [a, b], name="g")
        n.add_output(y.name)
        values = settle_combinational(n, {"a": 1, "b": 1})
        assert values[y.name] == 1

    def test_x_propagation(self):
        n = Netlist("t")
        a, b = n.add_input("a"), n.add_input("b")
        y = n.add_gate("AND2", [a, b], name="g")
        values = settle_combinational(n, {"a": 1})  # b undriven
        assert values[y.name] is None

    def test_controlling_x(self):
        n = Netlist("t")
        a, b = n.add_input("a"), n.add_input("b")
        y = n.add_gate("AND2", [a, b], name="g")
        values = settle_combinational(n, {"a": 0})
        assert values[y.name] == 0


class TestEventSimulator:
    def test_dff_samples_on_rising_edge(self):
        n = Netlist("t")
        clk = n.add_input("clk", clock=True)
        d = n.add_input("d")
        n.add("DFF", name="r", D=d, CK=clk, Q="q")
        n.add_output("q")
        sim = EventSimulator(n)
        sim.set_input("d", 1, 0.0)
        sim.add_clock("clk", period=1000.0, until=3000.0)
        sim.run(3000.0)
        captures = sim.captures["r"]
        assert len(captures) == 3
        assert all(c.value == 1 for c in captures)
        assert sim.value("q") == 1

    def test_latch_transparent_vs_opaque(self):
        n = Netlist("t")
        en = n.add_input("en")
        d = n.add_input("d")
        n.add("LATCH_H", name="l", D=d, EN=en, Q="q")
        n.add_output("q")
        sim = EventSimulator(n)
        sim.set_input("en", 1, 0.0)
        sim.set_input("d", 1, 100.0)
        sim.run(1000.0)
        assert sim.value("q") == 1  # transparent: follows D
        sim.set_input("en", 0, 1000.0)
        sim.set_input("d", 0, 1200.0)
        sim.run(2000.0)
        assert sim.value("q") == 1  # opaque: holds captured value
        assert sim.captures["l"][-1].value == 1

    def test_celement_holds(self):
        n = Netlist("t")
        a, b = n.add_input("a"), n.add_input("b")
        n.add("C2", name="c", A=a, B=b, Q="q")
        n.add_output("q")
        sim = EventSimulator(n)
        sim.set_input("a", 1, 0.0)
        sim.set_input("b", 1, 0.0)
        sim.run(500.0)
        assert sim.value("q") == 1
        sim.set_input("a", 0, 500.0)  # mixed inputs: hold
        sim.run(1000.0)
        assert sim.value("q") == 1
        sim.set_input("b", 0, 1000.0)  # all zero: fall
        sim.run(1500.0)
        assert sim.value("q") == 0

    def test_ack_cell_protocol(self):
        n = Netlist("t")
        p, r, s = n.add_input("p"), n.add_input("r"), n.add_input("s")
        n.add("ACKC", name="a", init=1, P=p, R=r, S=s, Q="q")
        n.add_output("q")
        sim = EventSimulator(n)
        sim.set_input("p", 0, 0.0)
        sim.set_input("r", 1, 0.0)
        sim.set_input("s", 1, 0.0)
        sim.run(300.0)
        assert sim.value("q") == 1  # holds init
        sim.set_input("p", 1, 300.0)  # clear: P and R high
        sim.run(600.0)
        assert sim.value("q") == 0
        sim.set_input("p", 0, 600.0)
        sim.set_input("s", 0, 600.0)  # set: P and S low
        sim.run(900.0)
        assert sim.value("q") == 1

    def test_reqc_protocol(self):
        n = Netlist("t")
        r, g = n.add_input("r"), n.add_input("g")
        n.add("REQC", name="t0", init=0, R=r, G=g, Q="q")
        n.add_output("q")
        sim = EventSimulator(n)
        sim.set_input("r", 1, 0.0)
        sim.set_input("g", 0, 0.0)
        sim.run(300.0)
        assert sim.value("q") == 1  # set while R high
        sim.set_input("r", 0, 300.0)
        sim.run(600.0)
        assert sim.value("q") == 1  # holds: G low
        sim.set_input("g", 1, 600.0)
        sim.run(900.0)
        assert sim.value("q") == 0  # consumed

    def test_asym_cell(self):
        n = Netlist("t")
        r, a = n.add_input("r"), n.add_input("a")
        n.add("AC2", name="c", init=0, R=r, A=a, Q="q")
        n.add_output("q")
        sim = EventSimulator(n)
        sim.set_input("r", 1, 0.0)
        sim.set_input("a", 0, 0.0)
        sim.run(300.0)
        assert sim.value("q") == 0  # rise needs both
        sim.set_input("a", 1, 300.0)
        sim.run(600.0)
        assert sim.value("q") == 1
        sim.set_input("a", 0, 600.0)
        sim.run(900.0)
        assert sim.value("q") == 1  # ack ignored on fall
        sim.set_input("r", 0, 900.0)
        sim.run(1200.0)
        assert sim.value("q") == 0  # reset-dominant

    def test_toggle_counting_ignores_x_transitions(self):
        n = Netlist("t")
        a = n.add_input("a")
        y = n.add_gate("INV", [a], name="i")
        n.add_output(y.name)
        sim = EventSimulator(n)
        sim.set_input("a", 0, 0.0)   # X -> 0: not counted
        sim.set_input("a", 1, 500.0)
        sim.run(1000.0)
        assert sim.toggle_counts["a"] == 1

    def test_bad_input_port(self):
        n = Netlist("t")
        n.add_input("a")
        sim = EventSimulator(n)
        with pytest.raises(SimulationError):
            sim.set_input("nope", 1)

    def test_reset_settles_combinational(self):
        """At t=0 the logic between state elements is already settled."""
        n = Netlist("t")
        clk = n.add_input("clk", clock=True)
        q = n.net("q")
        inv = n.add_gate("INV", [q], name="i")
        n.add("DFF", name="r", init=0, D=inv, CK=clk, Q=q)
        n.add_output(q.name)
        sim = EventSimulator(n)
        assert sim.value(inv.name) == 1  # settled without any event


class TestCycleSimulator:
    def test_counter_counts(self):
        from tests.circuits import ripple_counter
        sim = CycleSimulator(ripple_counter(4))
        sim.run(5)
        assert sim.read_vector("q", 4) == 5

    def test_drive_and_read_vector(self):
        n = Netlist("t")
        clk = n.add_input("clk", clock=True)
        for i in range(4):
            n.add_input(f"d[{i}]")
            n.add("DFF", name=f"r/b{i}", D=f"d[{i}]", CK=clk, Q=f"q[{i}]")
        n.add_output("q[3]")
        sim = CycleSimulator(n)
        sim.drive_vector("d", 0b1010, 4)
        sim.step()
        assert sim.read_vector("q", 4) == 0b1010

    def test_reset_pin(self):
        n = Netlist("t")
        clk = n.add_input("clk", clock=True)
        rn = n.add_input("rn")
        one = n.add_gate("TIE1", [], name="one")
        n.add("DFFR", name="r", D=one, CK=clk, RN=rn, Q="q")
        n.add_output("q")
        sim = CycleSimulator(n)
        sim.set_inputs({"rn": 0})
        sim.step()
        assert sim.value("q") == 0
        sim.set_inputs({"rn": 1})
        sim.step()
        assert sim.value("q") == 1

    def test_rejects_latches(self):
        from repro.desync import latchify
        from tests.circuits import lfsr3
        with pytest.raises(SimulationError):
            CycleSimulator(latchify(lfsr3()))


class TestLatchCycleSimulator:
    def test_matches_ff_reference(self):
        from repro.desync import latchify, master_name
        from tests.circuits import ripple_counter
        sync = ripple_counter(3)
        latched = latchify(sync)
        ff_sim = CycleSimulator(sync)
        latch_sim = LatchCycleSimulator(latched)
        ff_sim.run(12)
        latch_sim.run(12)
        for ff in sync.dff_instances():
            assert (latch_sim.captures[master_name(ff.name)]
                    == ff_sim.captures[ff.name])

    def test_rejects_ffs(self):
        from tests.circuits import lfsr3
        with pytest.raises(SimulationError):
            LatchCycleSimulator(lfsr3())


class TestTogglesFastPath:
    """record_toggles=False: identical behaviour, no toggle bookkeeping."""

    def test_cycle_simulator(self):
        from repro.corpus import generate
        from repro.testing import random_stimulus
        netlist = generate("crc5")
        stimulus = random_stimulus(netlist, 12, seed=3)
        slow = CycleSimulator(netlist)
        fast = CycleSimulator(netlist, record_toggles=False)
        slow.run(12, stimulus)
        fast.run(12, stimulus)
        assert dict(fast.captures) == dict(slow.captures)
        assert fast.values == slow.values
        assert dict(slow.toggle_counts)      # the power model's input
        assert not fast.toggle_counts        # skipped entirely

    def test_latch_simulator(self):
        from repro.corpus import generate
        from repro.desync import latchify
        from repro.testing import random_stimulus
        latched = latchify(generate("crc5"))
        stimulus = random_stimulus(latched, 10, seed=3)
        slow = LatchCycleSimulator(latched)
        fast = LatchCycleSimulator(latched, record_toggles=False)
        slow.run(10, stimulus)
        fast.run(10, stimulus)
        assert dict(fast.captures) == dict(slow.captures)
        assert fast.values == slow.values
        assert dict(slow.toggle_counts)
        assert not fast.toggle_counts


class TestWaves:
    def test_wave_at(self):
        group = WaveGroup()
        wave = group.wave("a")
        wave.add(0.0, 0)
        wave.add(100.0, 1)
        wave.add(200.0, 0)
        assert wave.at(50.0) == 0
        assert wave.at(150.0) == 1
        assert wave.at(250.0) == 0

    def test_from_transitions(self):
        group = WaveGroup.from_transitions(
            [(10.0, "a+"), (20.0, "a-")], initial={"a": 0})
        assert group.wave("a").at(15.0) == 1

    def test_render(self):
        group = WaveGroup.from_transitions(
            [(10.0, "a+"), (60.0, "a-")], initial={"a": 0})
        art = group.render(width=10, until=100.0)
        assert "a" in art
        assert "#" in art
        assert "_" in art

    def test_overlap_intervals(self):
        group = WaveGroup()
        a = group.wave("a")
        b = group.wave("b")
        a.add(0.0, 1)
        a.add(100.0, 0)
        b.add(50.0, 1)
        b.add(150.0, 0)
        assert overlap_intervals(a, b, 200.0) == pytest.approx(50.0)

    def test_non_monotonic_rejected(self):
        group = WaveGroup()
        wave = group.wave("a")
        wave.add(10.0, 1)
        with pytest.raises(ValueError):
            wave.add(5.0, 0)
