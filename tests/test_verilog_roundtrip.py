"""Round-trip tests for the structural Verilog reader.

Property-style sweep: for every corpus configuration and every shared
test circuit, ``read_verilog(netlist_to_verilog(n))`` must reproduce
ports (and their order), instance/cell mapping, connectivity, init
values, and the clock — and re-emission must be byte-identical.  Plus
the reader's error paths: unknown cells, undriven nets, malformed
escaped identifiers, and the other ways a file can leave the subset.
"""

import pytest

from repro.corpus import generate, names
from repro.desync import desynchronize
from repro.netlist import GENERIC
from repro.utils.errors import VerilogError
from repro.verilog import (
    infer_clock,
    netlist_signature,
    netlist_to_verilog,
    read_verilog,
    read_verilog_file,
    write_verilog,
)

from tests.circuits import all_circuits, lfsr3

CIRCUITS = all_circuits()


class TestRoundTrip:
    @pytest.mark.parametrize("config", names())
    def test_corpus_roundtrip(self, config):
        netlist = generate(config)
        recovered = read_verilog(netlist_to_verilog(netlist))
        assert netlist_signature(recovered) == netlist_signature(netlist)

    @pytest.mark.parametrize("circuit", sorted(CIRCUITS))
    def test_shared_circuit_roundtrip(self, circuit):
        netlist = CIRCUITS[circuit]()
        recovered = read_verilog(netlist_to_verilog(netlist))
        assert netlist_signature(recovered) == netlist_signature(netlist)

    def test_emission_is_idempotent(self):
        # write(read(write(n))) == write(n): the pair is byte-stable.
        for circuit in sorted(CIRCUITS):
            text = netlist_to_verilog(CIRCUITS[circuit]())
            assert netlist_to_verilog(read_verilog(text)) == text

    def test_desync_netlist_roundtrip(self):
        # The flow's *output* (latches, C-elements, token cells with
        # init states) survives the round trip too.
        result = desynchronize(lfsr3())
        netlist = result.desync_netlist
        text = netlist_to_verilog(netlist)
        recovered = read_verilog(text)
        assert netlist_signature(recovered) == netlist_signature(netlist)
        assert netlist_to_verilog(recovered) == text

    def test_file_roundtrip(self, tmp_path):
        netlist = generate("crc5")
        path = str(tmp_path / "crc5.v")
        write_verilog(netlist, path)
        recovered = read_verilog_file(path)
        assert netlist_signature(recovered) == netlist_signature(netlist)

    def test_init_values_preserved(self):
        netlist = lfsr3()
        for i, inst in enumerate(netlist.dff_instances()):
            inst.init = i % 2
        recovered = read_verilog(netlist_to_verilog(netlist))
        inits = {inst.name: inst.init
                 for inst in recovered.dff_instances()}
        assert inits == {inst.name: inst.init
                         for inst in netlist.dff_instances()}

    def test_clock_annotation_preserved(self):
        recovered = read_verilog(netlist_to_verilog(generate("pipe4x1")))
        assert recovered.clock == "clk"
        assert recovered.inputs[0] == "clk"

    def test_port_order_preserved(self):
        netlist = generate("mult2")
        recovered = read_verilog(netlist_to_verilog(netlist))
        assert recovered.inputs == netlist.inputs
        assert recovered.outputs == netlist.outputs

    def test_feedthrough_port_roundtrip(self):
        # A net that is both an input and an output port appears once in
        # the port list but in both declaration sections.
        netlist = generate("pipe4x1")
        netlist.add_output("din")
        text = netlist_to_verilog(netlist)
        assert text.count("din,") + text.count("din\n") == 1
        recovered = read_verilog(text)
        assert netlist_signature(recovered) == netlist_signature(netlist)
        assert netlist_to_verilog(recovered) == text


EXTERNAL = """\
module ext (clk, d, q);
  input clk;
  input d;
  output q;
  DFF r0 (.D(d), .CK(clk), .Q(q)); // init=1
endmodule
"""


class TestExternalSources:
    """Hand-written files (no writer annotations) still elaborate."""

    def test_minimal_module(self):
        netlist = read_verilog(EXTERNAL)
        assert netlist.name == "ext"
        assert netlist.inputs == ["clk", "d"]
        assert netlist.outputs == ["q"]
        assert netlist.instances["r0"].init == 1

    def test_clock_inferred_without_annotation(self):
        netlist = read_verilog(EXTERNAL)
        assert netlist.clock == "clk"

    def test_no_clock_inference_without_registers(self):
        source = ("module comb (a, y);\n  input a;\n  output y;\n"
                  "  INV u0 (.A(a), .Q(y));\nendmodule\n")
        netlist = read_verilog(source)
        assert netlist.clock is None
        assert infer_clock(netlist) is None

    def test_explicit_library_accepted(self):
        netlist = read_verilog(EXTERNAL, library=GENERIC)
        assert netlist.library is GENERIC

    def test_whitespace_and_comments_ignored(self):
        noisy = EXTERNAL.replace("input d;",
                                 "// free text comment\n  input d;")
        assert (netlist_signature(read_verilog(noisy))
                == netlist_signature(read_verilog(EXTERNAL)))

    def test_free_text_banner_is_not_an_annotation(self):
        # Tool banners mentioning key=value inside prose must not be
        # mined for library=/clock= pairs.
        banner = ("// synthesized with tool=yosys clock=bogus "
                  "library=unknown\n")
        netlist = read_verilog(banner + EXTERNAL)
        assert netlist.clock == "clk"   # inferred, not 'bogus'

    def test_multiline_instance_keeps_init(self):
        split = EXTERNAL.replace(
            "DFF r0 (.D(d), .CK(clk), .Q(q)); // init=1",
            "DFF r0 (.D(d), // init=1\n    .CK(clk), .Q(q));")
        assert read_verilog(split).instances["r0"].init == 1

    def test_shared_line_init_binds_to_last_statement(self):
        source = ("module two (clk, d, q);\n"
                  "  input clk;\n  input d;\n  output q;\n  wire m;\n"
                  "  DFF a (.D(d), .CK(clk), .Q(m)); "
                  "DFF b (.D(m), .CK(clk), .Q(q)); // init=1\n"
                  "endmodule\n")
        netlist = read_verilog(source)
        assert netlist.instances["a"].init == 0
        assert netlist.instances["b"].init == 1


class TestReaderErrors:
    def _reject(self, source, match):
        with pytest.raises(VerilogError, match=match):
            read_verilog(source)

    def test_unknown_cell(self):
        self._reject(EXTERNAL.replace("DFF", "MAGIC4"), "unknown cell")

    def test_undriven_net(self):
        source = ("module bad (a, y);\n  input a;\n  output y;\n"
                  "  wire n;\n  INV u0 (.A(n), .Q(y));\nendmodule\n")
        self._reject(source, "no driver")

    def test_undriven_output_port(self):
        source = ("module bad (a, y);\n  input a;\n  output y;\n"
                  "endmodule\n")
        self._reject(source, "no driver")

    def test_malformed_escape(self):
        self._reject(EXTERNAL.replace("r0", "\\ "), "malformed escaped")

    def test_unterminated_escape(self):
        self._reject("module m (a);\n  input a;\nendmodule \\tail",
                     "unterminated escaped")

    def test_double_driver(self):
        source = ("module bad (a, y);\n  input a;\n  output y;\n"
                  "  INV u0 (.A(a), .Q(y));\n  INV u1 (.A(a), .Q(y));\n"
                  "endmodule\n")
        self._reject(source, "already driven")

    def test_unknown_pin(self):
        self._reject(EXTERNAL.replace(".CK(", ".CLK("), "no pin")

    def test_reserved_word_pin_name_is_a_clean_error(self):
        # Pin names that collide with Netlist.add keywords must raise a
        # located VerilogError, not leak a TypeError.
        for pin in ("name", "init", "cell"):
            self._reject(EXTERNAL.replace(".CK(", f".{pin}("), "no pin")

    def test_port_without_declaration(self):
        # An undeclared port is caught at the module level...
        self._reject("module bad (a, y, u);\n  input a;\n  output y;\n"
                     "  BUF u0 (.A(a), .Q(y));\nendmodule\n",
                     "no input/output declaration")

    def test_port_declared_only_as_wire(self):
        # ...including a port-list name declared only as a wire, which
        # must not silently become an internal net.
        self._reject("module bad (a, p, y);\n  input a;\n  wire p;\n"
                     "  output y;\n  BUF u0 (.A(a), .Q(p));\n"
                     "  BUF u1 (.A(p), .Q(y));\nendmodule\n",
                     "no input/output declaration")

    def test_undeclared_net_in_connection(self):
        # ...and a connection to an undeclared net at the instance.
        self._reject("module bad (a, y);\n  input a;\n  output y;\n"
                     "  BUF u0 (.A(a), .Q(typo));\nendmodule\n",
                     "not declared")

    def test_library_mismatch(self):
        self._reject("// library=tsmc018\n" + EXTERNAL, "mapped to library")

    def test_bad_init_annotation(self):
        self._reject(EXTERNAL.replace("init=1", "init=2"), "init annotation")

    def test_init_on_combinational_cell_rejected(self):
        source = ("module bad (a, y);\n  input a;\n  output y;\n"
                  "  INV u0 (.A(a), .Q(y)); // init=1\nendmodule\n")
        self._reject(source, "holds no state")

    def test_whitespace_in_name_rejected_at_emission(self):
        netlist = generate("lfsr8")
        netlist.net("two words")
        with pytest.raises(VerilogError, match="whitespace"):
            netlist_to_verilog(netlist)

    def test_unemittable_annotation_value(self):
        from repro.netlist import Library, generic_library
        netlist = generate("lfsr8")
        netlist.library = Library(name="spaced out", voltage=1.8,
                                  wire_cap_per_fanout=1.2,
                                  cells=generic_library().cells)
        with pytest.raises(VerilogError, match="whitespace-free"):
            netlist_to_verilog(netlist)

    def test_clock_annotation_not_an_input(self):
        self._reject("// clock=nope\n" + EXTERNAL, "not an\\s+input")

    def test_missing_endmodule(self):
        self._reject("module m (a);\n  input a;\n", "missing 'endmodule'")

    def test_trailing_garbage(self):
        self._reject(EXTERNAL + "module again (x);\nendmodule\n",
                     "after 'endmodule'")

    def test_unexpected_character(self):
        self._reject(EXTERNAL.replace("(clk, d, q)", "(clk, d, q#)"),
                     "unexpected character")

    def test_error_carries_location(self):
        try:
            read_verilog(EXTERNAL.replace("DFF", "MAGIC4"))
        except VerilogError as exc:
            assert exc.line == 5
            assert "line 5" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected VerilogError")


class TestErrorLocations:
    """Error paths must point at the offending token: both the 1-based
    line and column ride on the :class:`VerilogError`."""

    def _located(self, source):
        with pytest.raises(VerilogError) as excinfo:
            read_verilog(source)
        error = excinfo.value
        assert f"line {error.line}:{error.column}" in str(error)
        return error

    def test_truncated_module(self):
        error = self._located("module m (a, y);\n  input a;\n  output y;\n"
                              "  BUF u0 (.A(a), .Q(y));\n")
        assert "missing 'endmodule'" in str(error)
        # the EOF token sits at the start of the line after the last text
        assert (error.line, error.column) == (5, 1)

    def test_duplicate_net_driver(self):
        error = self._located(
            "module bad (a, y);\n  input a;\n  output y;\n"
            "  INV u0 (.A(a), .Q(y));\n  INV u1 (.A(a), .Q(y));\n"
            "endmodule\n")
        assert "already driven by u0" in str(error)
        # located at u1's output pin token on line 5
        assert (error.line, error.column) == (5, 19)

    def test_unknown_cell(self):
        error = self._located(
            "module m (a, y);\n  input a;\n  output y;\n"
            "  MAGIC4 u0 (.A(a), .Q(y));\nendmodule\n")
        assert "unknown cell 'MAGIC4'" in str(error)
        assert (error.line, error.column) == (4, 3)

    def test_bad_annotation_value(self):
        error = self._located(
            "module m (clk, d, q);\n  input clk;\n  input d;\n"
            "  output q;\n"
            "  DFF r0 (.D(d), .CK(clk), .Q(q)); // init=2\nendmodule\n")
        assert "init annotation must be 0 or 1" in str(error)
        # located at the annotation comment itself, not the statement
        assert (error.line, error.column) == (5, 36)
