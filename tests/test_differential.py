"""Differential-harness tests: three execution models, one behaviour.

The corpus-wide sweep here is the randomized cross-backend verification
the CI ``differential`` job runs; the fault-injection tests exercise
the harness's own failure path (mismatch extraction and stimulus-prefix
minimization) by plugging a deliberately corrupted runner in as an
extra backend.
"""

import pytest

from repro.corpus import generate, names
from repro.testing import (
    DEFAULT_SEED,
    RUNNERS,
    data_inputs,
    differential_corpus,
    minimize_prefix,
    random_stimulus,
    run_differential,
)
from repro.utils.errors import DifferentialError

from tests.circuits import lfsr3, mixed_feedback


class TestStimulus:
    def test_deterministic(self):
        netlist = generate("pipe8x2")
        assert random_stimulus(netlist, 10, seed=3) == \
            random_stimulus(netlist, 10, seed=3)
        assert random_stimulus(netlist, 10, seed=3) != \
            random_stimulus(netlist, 10, seed=4)

    def test_covers_every_data_input_every_cycle(self):
        netlist = generate("mult4")
        ports = set(data_inputs(netlist))
        assert ports and netlist.clock not in ports
        for vector in random_stimulus(netlist, 6):
            assert set(vector) == ports
            assert all(value in (0, 1) for value in vector.values())

    def test_registers_only_circuit(self):
        assert random_stimulus(generate("lfsr8"), 4) == [{}] * 4


class TestCorpusAgreement:
    @pytest.mark.parametrize("config", names())
    def test_backends_agree(self, config):
        report = run_differential(generate(config), cycles=16,
                                  seed=DEFAULT_SEED)
        assert report.ok, report.describe()
        report.assert_ok()

    def test_sweep_helper(self):
        reports = differential_corpus(configs=["lfsr8", "mult2"], cycles=8)
        assert set(reports) == {"lfsr8", "mult2"}
        assert all(report.ok for report in reports.values())

    def test_hand_coded_feedback_circuit(self):
        report = run_differential(mixed_feedback(), cycles=20)
        assert report.ok, report.describe()


def _corrupting(base, register_index=0, cycle=5):
    """A runner wrapping ``base`` that flips one captured bit."""
    def run(netlist, stimulus):
        result = RUNNERS[base](netlist, stimulus)
        register = sorted(result.captures)[register_index]
        stream = result.captures[register]
        if len(stream) > cycle:
            stream[cycle] ^= 1
        return result
    return run


class TestFaultInjection:
    def test_mismatch_located(self):
        report = run_differential(
            generate("crc5"), cycles=12,
            backends=("event", "bad"),
            runners={"bad": _corrupting("cycle", cycle=4)})
        assert not report.ok
        first = report.mismatches[0]
        assert first.kind == "captures"
        assert first.register == sorted(
            inst.name for inst in generate("crc5").dff_instances())[0]
        assert first.cycle == 4
        assert (first.reference, first.backend) == ("event", "bad")
        with pytest.raises(DifferentialError, match="disagreement"):
            report.assert_ok()

    def test_minimized_to_first_divergent_prefix(self):
        # The corruption lands in capture 5, so 6 cycles is the
        # shortest stimulus that still exposes it.
        report = run_differential(
            lfsr3(), cycles=16,
            backends=("compiled", "bad"),
            runners={"bad": _corrupting("cycle", cycle=5)})
        assert not report.ok
        assert report.minimized_cycles == 6
        assert "minimal failing stimulus prefix: 6" in report.describe()

    def test_event_level_observables_compared(self):
        # Corrupting an event-engine run trips the exact event-level
        # comparison (net values/toggles/event count), not just the
        # register-level one.
        def noisy(netlist, stimulus):
            result = RUNNERS["compiled"](netlist, stimulus)
            result.n_events += 1
            return result
        report = run_differential(generate("lfsr8"), cycles=8,
                                  backends=("event", "noisy"),
                                  runners={"noisy": noisy},
                                  minimize=False)
        assert any(m.kind == "events" for m in report.mismatches)


class TestHarnessErrors:
    def test_unknown_backend(self):
        with pytest.raises(DifferentialError, match="unknown backend"):
            run_differential(lfsr3(), backends=("event", "verilator"))

    def test_needs_two_backends(self):
        with pytest.raises(DifferentialError, match=">= 2 backends"):
            run_differential(lfsr3(), backends=("event",))


class TestMinimizePrefix:
    def test_monotone_predicate(self):
        assert minimize_prefix(lambda n: n >= 7, 16) == 7
        assert minimize_prefix(lambda n: n >= 1, 16) == 1
        assert minimize_prefix(lambda n: n >= 16, 16) == 16

    def test_no_divergence(self):
        assert minimize_prefix(lambda n: False, 16) is None
        assert minimize_prefix(lambda n: True, 0) is None
