"""Tests for marked-graph cycle-time analysis and timed simulation."""

import pytest

from repro.petri import MarkedGraph, cycle_time, simulate, total_tokens
from repro.utils.errors import PetriError


def ring_with(delays: list[float], tokens: list[int],
              edge_delays: list[float] | None = None) -> MarkedGraph:
    mg = MarkedGraph("ring")
    count = len(delays)
    for i, delay in enumerate(delays):
        mg.add_transition(f"t{i}", delay=delay)
    for i in range(count):
        extra = edge_delays[i] if edge_delays else 0.0
        mg.connect(f"t{i}", f"t{(i + 1) % count}", tokens=tokens[i],
                   delay=extra)
    return mg


class TestCycleTime:
    def test_single_token_ring(self):
        mg = ring_with([10, 20, 30], [1, 0, 0])
        result = cycle_time(mg)
        assert result.cycle_time == pytest.approx(60.0, rel=1e-4)
        assert result.critical_tokens == 1

    def test_two_tokens_halve_period(self):
        mg = ring_with([10, 20, 30, 40], [1, 0, 1, 0])
        result = cycle_time(mg)
        assert result.cycle_time == pytest.approx(50.0, rel=1e-4)

    def test_edge_delays_count(self):
        mg = ring_with([10, 10], [1, 0], edge_delays=[100.0, 0.0])
        result = cycle_time(mg)
        assert result.cycle_time == pytest.approx(120.0, rel=1e-4)

    def test_max_over_cycles(self):
        # Two rings sharing a transition: the slower one dominates.
        mg = MarkedGraph("two")
        for name, delay in [("a", 10.0), ("b", 10.0), ("c", 100.0)]:
            mg.add_transition(name, delay=delay)
        mg.connect("a", "b", tokens=1)
        mg.connect("b", "a", tokens=0)
        mg.connect("a", "c", tokens=1)
        mg.connect("c", "a", tokens=0)
        result = cycle_time(mg)
        assert result.cycle_time == pytest.approx(110.0, rel=1e-4)
        assert "c" in result.critical_cycle

    def test_critical_cycle_is_consistent(self):
        mg = ring_with([15, 25, 35], [0, 1, 0])
        result = cycle_time(mg)
        assert result.critical_delay / result.critical_tokens == pytest.approx(
            result.cycle_time, rel=1e-3)

    def test_non_live_raises(self):
        mg = ring_with([10, 10], [0, 0])
        with pytest.raises(PetriError):
            cycle_time(mg)

    def test_acyclic_graph_zero_period(self):
        mg = MarkedGraph("line")
        mg.add_transition("a", delay=10.0)
        mg.add_transition("b", delay=10.0)
        mg.connect("a", "b", tokens=0)
        result = cycle_time(mg)
        assert result.cycle_time == 0.0

    def test_total_tokens(self):
        assert total_tokens(ring_with([1, 1], [1, 1])) == 2


class TestTimedSimulation:
    def test_period_matches_analysis(self):
        mg = ring_with([10, 20, 30], [1, 0, 0])
        trace = simulate(mg, rounds=10)
        assert trace.steady_period("t0", settle=2) == pytest.approx(
            60.0, rel=1e-4)

    def test_event_counts(self):
        mg = ring_with([10, 20], [1, 0])
        trace = simulate(mg, rounds=5)
        counts = trace.firing_counts()
        assert counts == {"t0": 5, "t1": 5}

    def test_events_sorted(self):
        mg = ring_with([10, 20, 5, 1], [1, 0, 1, 0])
        trace = simulate(mg, rounds=6)
        times = [event.time for event in trace.events]
        assert times == sorted(times)

    def test_concurrent_transitions(self):
        # Fork-join: both branches fire each round.
        mg = MarkedGraph("forkjoin")
        for name in ("src", "up", "down", "join"):
            mg.add_transition(name, delay=10.0)
        mg.connect("src", "up", tokens=0)
        mg.connect("src", "down", tokens=0)
        mg.connect("up", "join", tokens=0)
        mg.connect("down", "join", tokens=0)
        mg.connect("join", "src", tokens=1)
        trace = simulate(mg, rounds=4)
        counts = trace.firing_counts()
        assert set(counts.values()) == {4}
        # Join waits for the slower branch: period is 30.
        assert trace.steady_period("src", settle=1) == pytest.approx(30.0)

    def test_edge_delay_in_simulation(self):
        mg = ring_with([0, 0], [1, 0], edge_delays=[100.0, 0.0])
        trace = simulate(mg, rounds=6)
        assert trace.steady_period("t0", settle=1) == pytest.approx(100.0)

    def test_too_few_firings_for_period(self):
        mg = ring_with([10, 10], [1, 0])
        trace = simulate(mg, rounds=2)
        with pytest.raises(PetriError):
            trace.steady_period("t0", settle=2)

    def test_times_of(self):
        mg = ring_with([10, 0], [1, 0])
        trace = simulate(mg, rounds=3)
        assert trace.times_of("t0") == pytest.approx([10.0, 20.0, 30.0])

    def test_horizon(self):
        mg = ring_with([10, 0], [1, 0])
        trace = simulate(mg, rounds=3)
        assert trace.horizon == pytest.approx(30.0)
