"""Tests for STGs, the Figure-4 patterns, and model composition."""

import pytest

from repro.petri import cycle_time, simulate
from repro.stg import (
    Parity,
    Stg,
    compose,
    even_to_odd,
    linear_pipeline,
    odd_to_even,
    pairwise_pattern,
    parse_label,
    ring,
    transition_name,
)
from repro.utils.errors import StgError


class TestLabels:
    def test_transition_name(self):
        assert transition_name("clk", "+") == "clk+"

    def test_bad_sign(self):
        with pytest.raises(StgError):
            transition_name("a", "*")

    def test_parse_label(self):
        assert parse_label("lat3-") == ("lat3", "-")

    def test_parse_bad_label(self):
        with pytest.raises(StgError):
            parse_label("x")


class TestStgBasics:
    def test_add_signal_creates_two_transitions(self):
        stg = Stg("t")
        rise, fall = stg.add_signal("a", initial=0)
        assert rise == "a+"
        assert fall == "a-"
        assert set(stg.transitions) == {"a+", "a-"}

    def test_duplicate_signal(self):
        stg = Stg("t")
        stg.add_signal("a", 0)
        with pytest.raises(StgError):
            stg.add_signal("a", 1)

    def test_consistency_accepts_alternation(self):
        stg = Stg("t")
        stg.add_signal("a", 0)
        stg.connect("a+", "a-", tokens=0)
        stg.connect("a-", "a+", tokens=1)
        stg.check_consistency()

    def test_consistency_rejects_double_rise(self):
        stg = Stg("t")
        stg.add_signal("a", 1)  # a already high...
        stg.connect("a+", "a-", tokens=0)
        stg.connect("a-", "a+", tokens=1)  # ...but a+ enabled first
        with pytest.raises(StgError, match="inconsistent"):
            stg.check_consistency()


class TestParity:
    def test_opposites(self):
        assert Parity.EVEN.opposite is Parity.ODD
        assert Parity.ODD.opposite is Parity.EVEN

    def test_initial_control(self):
        assert Parity.EVEN.initial_control == 1
        assert Parity.ODD.initial_control == 0


class TestPatterns:
    def test_even_to_odd_valid_model(self):
        even_to_odd().check_model()

    def test_odd_to_even_valid_model(self):
        odd_to_even().check_model()

    def test_even_to_odd_marking(self):
        stg = even_to_odd("A", "B")
        marks = dict(stg.initial_marking)
        assert marks["A>B:r"] == 1      # request marked for even pred
        assert "A>B:rf" not in marks    # rf unmarked
        assert marks["A>B:af"] == 1     # no-overwrite always marked
        assert "A>B:a" not in marks     # ack never marked (overlap arc)

    def test_odd_to_even_marking(self):
        stg = odd_to_even("B", "A")
        marks = dict(stg.initial_marking)
        assert "B>A:r" not in marks
        assert marks["B>A:rf"] == 1
        assert marks["B>A:af"] == 1

    def test_self_loop_tokens_by_parity(self):
        stg = even_to_odd("A", "B")
        marks = dict(stg.initial_marking)
        assert marks["self:A:rf"] == 1   # even: next event is closing
        assert marks["self:B:fr"] == 1   # odd: next event is opening

    def test_same_latch_rejected(self):
        with pytest.raises(StgError):
            pairwise_pattern("A", "A", Parity.EVEN)

    def test_pattern_overlap_order(self):
        """The successor opens before the predecessor closes (Figure 3)."""
        stg = even_to_odd("A", "B")
        for transition in stg.transitions.values():
            object.__setattr__  # transitions are frozen; rebuild with delay
        stg = linear_pipeline(["A", "B"], stage_delay=100.0,
                              controller_delay=10.0)
        trace = simulate(stg, rounds=6)
        b_rise = trace.times_of("B+")
        a_fall = trace.times_of("A-")
        # Every A- follows the B+ of the same round: overlapping pulses.
        for rise, fall in zip(b_rise, a_fall):
            assert fall >= rise


class TestPipelineModel:
    def test_figure3_pipeline_checks(self):
        stg = linear_pipeline(["A", "B", "C", "D"], stage_delay=100.0,
                              controller_delay=10.0)
        stg.check_model()

    def test_pipeline_cycle_time(self):
        stg = linear_pipeline(["A", "B", "C", "D"], stage_delay=1000.0,
                              controller_delay=50.0)
        result = cycle_time(stg)
        # Period = matched delay + 3 controller delays (see DESIGN.md).
        assert result.cycle_time == pytest.approx(1150.0, rel=1e-3)

    def test_pipeline_simulation_matches_analysis(self):
        stg = linear_pipeline(["A", "B", "C", "D"], stage_delay=777.0,
                              controller_delay=33.0)
        expected = cycle_time(stg).cycle_time
        trace = simulate(stg, rounds=12)
        for name in ("A+", "B-", "D+"):
            assert trace.steady_period(name, settle=4) == pytest.approx(
                expected, rel=1e-3)

    def test_no_overwrite_property(self):
        """p+ of round k+1 never precedes s- of round k (data would be
        overwritten before capture otherwise)."""
        stg = linear_pipeline(["A", "B", "C"], stage_delay=200.0,
                              controller_delay=10.0)
        trace = simulate(stg, rounds=10)
        for pred, succ in [("A", "B"), ("B", "C")]:
            pred_rises = trace.times_of(f"{pred}+")
            succ_falls = trace.times_of(f"{succ}-")
            for k in range(min(len(pred_rises), len(succ_falls)) - 1):
                assert pred_rises[k + 1] >= succ_falls[k]

    def test_short_pipeline_rejected(self):
        with pytest.raises(StgError):
            linear_pipeline(["A"])


class TestRingModel:
    def test_ff_self_loop(self):
        stg = ring(["M", "S"], controller_delay=50.0,
                   stage_delays=[0.0, 2000.0])
        stg.check_model()
        result = cycle_time(stg)
        assert result.cycle_time == pytest.approx(2150.0, rel=1e-3)

    def test_ring_is_one_safe(self):
        stg = ring(["M", "S"], stage_delays=[0.0, 100.0])
        assert stg.is_safe()

    def test_ring4(self):
        stg = ring(["M1", "S1", "M2", "S2"], stage_delay=500.0,
                   controller_delay=25.0)
        stg.check_model()

    def test_odd_ring_rejected(self):
        with pytest.raises(StgError):
            ring(["A", "B", "C"])

    def test_bad_stage_delays_length(self):
        with pytest.raises(StgError):
            ring(["A", "B"], stage_delays=[1.0])


class TestComposition:
    def test_compose_patterns_into_pipeline(self):
        """Composing (A,B) and (B,C) patterns equals the direct pipeline
        model, modulo duplicated self-loops of the shared latch."""
        ab = even_to_odd("A", "B")
        bc = odd_to_even("B", "C")
        composed = compose([ab, bc], "ABC")
        composed.check_structure()
        assert set(composed.signals()) == {"A", "B", "C"}
        assert composed.is_live()
        composed.check_consistency()

    def test_compose_conflicting_initial_values(self):
        first = Stg("x")
        first.add_signal("a", 0)
        second = Stg("y")
        second.add_signal("a", 1)
        with pytest.raises(StgError, match="conflict"):
            compose([first, second], "bad")

    def test_compose_empty(self):
        with pytest.raises(StgError):
            compose([], "none")

    def test_compose_keeps_max_delay(self):
        first = Stg("x")
        first.add_signal("a", 0, delay=5.0)
        second = Stg("y")
        second.add_signal("a", 0, delay=9.0)
        merged = compose([first, second], "m")
        assert merged.transitions["a+"].delay == 9.0
