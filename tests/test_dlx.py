"""Tests for the DLX: ISA, assembler, golden model, gate-level core."""

import pytest

from repro.dlx import (
    DlxConfig,
    DlxSystem,
    GoldenDlx,
    assemble,
    build_dlx,
    decode,
    disassemble,
    load,
)
from repro.dlx.isa import NOP, OP_ADDI, encode_i
from repro.utils.errors import AssemblerError, RtlError


class TestIsa:
    def test_decode_fields(self):
        word = encode_i(OP_ADDI, 2, 3, 0xFFFB)  # addi r3, r2, -5
        inst = decode(word)
        assert inst.opcode == OP_ADDI
        assert inst.rs == 2
        assert inst.rt == 3
        assert inst.simm == -5

    def test_nop_is_zero(self):
        assert NOP == 0

    def test_disassemble_roundtrip_forms(self):
        source = """
            add r1, r2, r3
            addi r4, r5, -7
            lw r6, 3(r7)
            beq r1, r2, 2
            sll r1, r2, 4
            j 12
            halt
        """
        for word, expect in zip(assemble(source),
                                ["add r1, r2, r3", "addi r4, r5, -7",
                                 "lw r6, 3(r7)", "beq r1, r2, 2",
                                 "sll r1, r2, 4", "j 12", "halt"]):
            assert disassemble(word) == expect


class TestAssembler:
    def test_labels_resolve(self):
        words = assemble("""
        start:  addi r1, r0, 1
                beq r1, r0, start
                j start
        """)
        assert decode(words[1]).simm == -2  # back to start
        assert decode(words[2]).target == 0

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("x: nop\nx: nop")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("addi r99, r0, 1")

    def test_word_directive(self):
        assert assemble(".word 0xdeadbeef") == [0xDEADBEEF]

    def test_comments_ignored(self):
        assert len(assemble("nop ; trailing\n# whole line\nnop")) == 2


class TestGolden:
    def test_fibonacci(self):
        program, data = load("fibonacci")
        result = GoldenDlx(16, 8).run(program, data)
        assert result.halted
        assert result.registers[1] == 55  # fib(10)

    def test_gcd(self):
        program, data = load("gcd")
        result = GoldenDlx(16, 8).run(program, data)
        assert result.registers[3] == 42

    def test_memory_sum(self):
        program, data = load("memory_sum")
        result = GoldenDlx(16, 8).run(program, data)
        assert result.registers[2] == sum((i + 1) * 3 for i in range(8))

    def test_bubble_sort(self):
        program, data = load("bubble_sort")
        result = GoldenDlx(16, 8).run(program, data)
        assert [result.memory[a] for a in range(32, 37)] == [1, 2, 5, 7, 9]

    def test_r0_never_written(self):
        result = GoldenDlx(16, 8).run(assemble("addi r0, r0, 7\nhalt"))
        assert result.registers[0] == 0

    def test_runaway_detected(self):
        result = GoldenDlx(16, 8).run(assemble("loop: j loop"),
                                      max_steps=50)
        assert not result.halted


@pytest.fixture(scope="module")
def core16():
    return build_dlx(DlxConfig(width=16, n_registers=8))


class TestGateLevelCore:
    def test_config_validation(self):
        with pytest.raises(RtlError):
            DlxConfig(width=8)
        with pytest.raises(RtlError):
            DlxConfig(n_registers=6)

    def test_core_structure(self, core16):
        netlist = core16.netlist
        assert netlist.clock == "clk"
        banks = {name for name, _ in
                 __import__("repro.netlist", fromlist=["iter_register_banks"]
                            ).iter_register_banks(netlist)}
        assert {"pc", "if_id", "id_ex", "ex_mem", "mem_wb"} <= banks
        assert {"r1", "r7"} <= banks

    @pytest.mark.parametrize("program_name", [
        "fibonacci", "gcd", "shift_mask", "hazard_torture", "memory_sum",
    ])
    def test_programs_match_golden(self, core16, program_name):
        program, data = load(program_name)
        system = DlxSystem(core16, program, data)
        golden = system.golden_result()
        run = system.run_sync(max_cycles=1500)
        assert run.halted
        assert run.commit_values() == [(c.register, c.value)
                                       for c in golden.commits]
        for register, value in golden.memory.items():
            assert run.memory.get(register, 0) == value

    def test_bubble_sort_sorts(self, core16):
        program, data = load("bubble_sort")
        system = DlxSystem(core16, program, data)
        run = system.run_sync(max_cycles=1500)
        assert run.halted
        assert [run.memory[a] for a in range(32, 37)] == [1, 2, 5, 7, 9]


class TestDesyncDlx:
    """The paper's experiment: the same DLX, de-synchronized, still runs."""

    def test_program_on_async_fabric(self, core16):
        from repro.desync import desynchronize
        result = desynchronize(core16.netlist)
        program, data = load("shift_mask")
        system = DlxSystem(core16, program, data)
        golden = system.golden_result()
        run = system.run_desync(result, max_cycles=50)
        assert run.halted
        for i in range(1, 8):
            assert run.registers[i] == golden.registers[i]

    def test_desync_overheads_small(self, core16):
        from repro.desync import desynchronize
        result = desynchronize(core16.netlist)
        ratio = (result.desync_cycle_time().cycle_time
                 / result.sync_period())
        assert 1.0 <= ratio < 1.35
        area_ratio = (result.desync_netlist.total_area()
                      / core16.netlist.total_area())
        assert 1.0 < area_ratio < 1.10
