"""Tests for the report helpers: the versioned JSON artifact envelope."""

import json
import os

import pytest

from repro.report import JSON_SCHEMA, git_short_sha, write_csv, write_json


class TestWriteJson:
    def test_envelope_shape(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        write_json(path, ["name", "value"], [["a", 1], ["b", 2.5]])
        with open(path) as handle:
            payload = json.load(handle)
        assert set(payload) == {"schema", "git_sha", "columns", "rows",
                                "metrics"}
        assert payload["schema"] == JSON_SCHEMA
        assert payload["columns"] == ["name", "value"]
        assert payload["rows"] == [{"name": "a", "value": 1},
                                   {"name": "b", "value": 2.5}]
        assert payload["metrics"] == {}
        # The recorded sha must match what the artifact's own directory
        # resolves to — None outside a repository (tarball installs),
        # the checkout's sha if tmp_path happens to land inside one.
        assert payload["git_sha"] == git_short_sha(str(tmp_path))

    def test_sha_present_inside_a_repository(self, tmp_path):
        here = os.path.dirname(os.path.abspath(__file__))
        sha = git_short_sha(here)
        if sha is None:
            pytest.skip("git unavailable or not a checkout")
        assert sha == sha.strip() and len(sha) >= 4
        int(sha, 16)  # abbreviated hashes are hex

    def test_metrics_block_round_trips(self, tmp_path):
        path = str(tmp_path / "BENCH_m.json")
        metrics = {"sweep.replay_fallbacks": {"type": "counter", "value": 2}}
        write_json(path, ["a"], [[1]], metrics=metrics)
        with open(path) as handle:
            assert json.load(handle)["metrics"] == metrics

    def test_malformed_metrics_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="summary dict"):
            write_json(str(tmp_path / "x.json"), ["a"], [[1]],
                       metrics={"bad": 3})

    def test_duplicate_columns_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate column"):
            write_json(str(tmp_path / "x.json"), ["a", "a"], [[1, 2]])

    def test_row_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="row 1 has 1 cells"):
            write_json(str(tmp_path / "x.json"), ["a", "b"],
                       [[1, 2], [3]])

    def test_csv_unchanged(self, tmp_path):
        path = str(tmp_path / "x.csv")
        write_csv(path, ["a", "b"], [[1, 2]])
        with open(path) as handle:
            assert handle.read() == "a,b\n1,2\n"
