"""The durable job store, result cache, and chaos harness.

Covers the full robustness story of :mod:`repro.jobs`: checksummed
atomic entries (torn and corrupt files quarantined, never trusted and
never fatal), the two-tier content-addressed result cache, the
lease-based claim protocol (contention, renewal, expiry, reclamation
from dead *and* frozen workers), idempotent first-wins completion with
duplicate detection, the cross-worker dead-letter state, and the
durable multi-process mode of :func:`repro.faults.executor.run_cells` —
including the ``SIGKILL`` drill where a surviving worker finishes a
dead worker's cells and still returns the complete merged outcome set.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.faults.executor import ExecutorPolicy, run_cells
from repro.jobs import (
    CHAOS_ENV,
    ChaosInjector,
    ChaosPolicy,
    JobStore,
    JobStoreError,
    MISS,
    QUARANTINE_DIR,
    ResultCache,
    cache_key,
    chaos_from_env,
    payload_digest,
    publish_entry,
    read_entry,
    replace_entry,
)
from repro.obs.metrics import METRICS


# -- module-level workers (fork pools need picklable callables) --------

def double(payload):
    return payload * 2


def boom(payload):
    raise ValueError(f"cell {payload} is broken")


def slow_double(payload):
    time.sleep(2.5)
    return payload * 2


def _drive_blocking(job_dir, tasks, ready_path):
    """A victim driver: claims cells whose worker never finishes."""
    # Lead a fresh process group so the test can SIGKILL the driver AND
    # its pool workers in one shot — a surviving orphan worker would
    # otherwise hold inherited pipes (pytest's stdout) open forever.
    os.setpgrp()
    with open(ready_path, "w"):
        pass
    run_cells(tasks, slow_double,
              ExecutorPolicy(jobs=1, job_dir=job_dir, lease_ttl=0.4,
                             backoff=0.01, poll=0.02,
                             worker_id="victim"))


def _drive_and_dump(job_dir, tasks, stats_path):
    """A cooperating driver that records its outcomes and stats."""
    outcomes, stats = run_cells(
        tasks, double,
        ExecutorPolicy(jobs=2, job_dir=job_dir, lease_ttl=0.4,
                       backoff=0.01, poll=0.02))
    with open(stats_path, "w") as handle:
        json.dump({"values": {k: o.value for k, o in outcomes.items()},
                   "statuses": {k: o.status for k, o in outcomes.items()},
                   "stats": stats.as_dict()}, handle)


# -- chaos --------------------------------------------------------------

class TestChaos:
    def test_policy_validation(self):
        with pytest.raises(JobStoreError, match="torn"):
            ChaosPolicy(torn=1.5)
        with pytest.raises(JobStoreError, match="corrupt"):
            ChaosPolicy(corrupt=-0.1)
        assert not ChaosPolicy().armed
        assert ChaosPolicy(fsync=0.5).armed

    def test_seeded_injection_is_deterministic(self):
        data = b'{"sha256": "x", "payload": [1, 2, 3]}'
        one = ChaosInjector(ChaosPolicy(torn=0.5, corrupt=0.5, seed=7))
        two = ChaosInjector(ChaosPolicy(torn=0.5, corrupt=0.5, seed=7))
        assert [one.mangle(data) for _ in range(20)] == \
            [two.mangle(data) for _ in range(20)]
        assert one.injected == two.injected
        assert one.injected["torn"] + one.injected["corrupt"] > 0

    def test_fsync_denial_degrades_not_fails(self, tmp_path):
        chaos = ChaosInjector(ChaosPolicy(fsync=1.0))
        before = METRICS.counter("jobs.fsync_denied").value
        path = str(tmp_path / "entry.json")
        replace_entry(path, {"v": 1}, chaos=chaos)  # must not raise
        assert METRICS.counter("jobs.fsync_denied").value > before
        ok, payload = read_entry(path, "jobs.test.quarantined")
        assert ok and payload == {"v": 1}  # the write itself landed

    def test_chaos_from_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert chaos_from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "torn=0.5,corrupt=0.25,seed=3")
        injector = chaos_from_env()
        assert injector.policy.torn == 0.5
        assert injector.policy.corrupt == 0.25
        assert injector.policy.seed == 3
        monkeypatch.setenv(CHAOS_ENV, "explode=1")
        with pytest.raises(JobStoreError, match=CHAOS_ENV):
            chaos_from_env()
        monkeypatch.setenv(CHAOS_ENV, "torn=lots")
        with pytest.raises(JobStoreError, match="not a number"):
            chaos_from_env()


# -- checksummed entries ------------------------------------------------

class TestEntries:
    def test_roundtrip_and_digest_stability(self, tmp_path):
        path = str(tmp_path / "e.json")
        replace_entry(path, {"b": 2, "a": 1})
        ok, payload = read_entry(path, "jobs.test.quarantined")
        assert ok and payload == {"a": 1, "b": 2}
        assert payload_digest({"a": 1, "b": 2}) == \
            payload_digest({"b": 2, "a": 1})

    def test_publish_is_first_wins(self, tmp_path):
        path = str(tmp_path / "e.json")
        assert publish_entry(path, {"winner": 1})
        assert not publish_entry(path, {"loser": 2})
        ok, payload = read_entry(path, "jobs.test.quarantined")
        assert ok and payload == {"winner": 1}
        # The loser's temp file never lingers.
        assert [n for n in os.listdir(tmp_path)
                if n.startswith(".tmp.")] == []

    def test_corrupt_entry_quarantined(self, tmp_path):
        path = str(tmp_path / "e.json")
        replace_entry(path, {"v": 42})
        raw = bytearray(open(path, "rb").read())
        raw[len(raw) // 2] ^= 0x20  # one flipped byte
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        before = METRICS.counter("jobs.test.quarantined").value
        ok, payload = read_entry(path, "jobs.test.quarantined")
        assert not ok and payload is None
        assert METRICS.counter("jobs.test.quarantined").value == before + 1
        assert not os.path.exists(path)  # moved aside, not deleted
        pen = tmp_path / QUARANTINE_DIR
        assert any(name.startswith("e.json") for name in os.listdir(pen))

    def test_torn_entry_quarantined(self, tmp_path):
        path = str(tmp_path / "e.json")
        replace_entry(path, {"v": list(range(50))})
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 3])  # the crash landed here
        ok, _ = read_entry(path, "jobs.test.quarantined")
        assert not ok
        assert not os.path.exists(path)


# -- the result cache ---------------------------------------------------

class TestResultCache:
    def test_memory_and_disk_tiers(self, tmp_path):
        key = cache_key("fp", "opts", "campaign")
        cache = ResultCache(str(tmp_path))
        assert cache.get(key) is MISS
        cache.put(key, {"rows": [1, 2]})
        assert cache.get(key) == {"rows": [1, 2]}
        assert cache.stats()["hits_memory"] == 1
        # A fresh instance has no memory tier: the hit comes from disk
        # and is promoted.
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(key) == {"rows": [1, 2]}
        assert fresh.stats()["hits_disk"] == 1
        assert fresh.get(key) == {"rows": [1, 2]}
        assert fresh.stats()["hits_memory"] == 1
        assert fresh.hit_rate() == 1.0

    def test_distinct_keys_distinct_entries(self):
        assert cache_key("fp", "opts", "campaign") != \
            cache_key("fp", "opts", "sweep")
        assert cache_key("fp", "opts", "campaign") != \
            cache_key("fp2", "opts", "campaign")

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache_key("fp", "opts", "none")
        cache.put(key, None)
        assert cache.get(key) is None
        assert key in ResultCache(str(tmp_path))

    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        key = cache_key("fp", "opts", "campaign")
        cache = ResultCache(str(tmp_path))
        cache.put(key, {"expensive": True})
        path = cache._path(key)
        raw = bytearray(open(path, "rb").read())
        raw[10] ^= 0x20
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(key) is MISS  # damage is a miss, never a crash
        assert fresh.stats()["quarantined"] == 1
        assert fresh.stats()["misses"] == 1
        # Recompute and re-publish: the cache heals.
        fresh.put(key, {"expensive": True})
        assert ResultCache(str(tmp_path)).get(key) == {"expensive": True}

    def test_hit_rate_none_before_lookups(self, tmp_path):
        assert ResultCache(str(tmp_path)).hit_rate() is None


# -- the job store ------------------------------------------------------

class TestJobStore:
    def test_manifest_is_first_wins_and_verified(self, tmp_path):
        root = str(tmp_path / "jobs")
        a = JobStore(root, worker_id="a", ttl=5.0)
        a.ensure_tasks(["k1", "k2"])
        b = JobStore(root, worker_id="b", ttl=5.0)
        b.ensure_tasks(["k1", "k2"])  # identical list: fine
        c = JobStore(root, worker_id="c", ttl=5.0)
        with pytest.raises(JobStoreError, match="different task list"):
            c.ensure_tasks(["k1", "k3"])
        with pytest.raises(JobStoreError, match="duplicate"):
            c.ensure_tasks(["k1", "k1"])

    def test_claim_complete_done(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"), worker_id="w", ttl=5.0)
        store.ensure_tasks(["cell"])
        claim = store.claim("cell", retries=2)
        assert claim.state == "acquired"
        assert claim.attempt == 1 and not claim.reclaimed
        assert store.complete("cell", {"v": 1}, claim.attempt)
        assert store.claim("cell", retries=2).state == "done"
        outcome = store.collect()["cell"]
        assert outcome.status == "done" and outcome.value == {"v": 1}
        events = [e["event"] for e in store.read_journal()]
        assert "claim" in events and "complete" in events

    def test_contended_claim_held_by_live_worker(self, tmp_path):
        root = str(tmp_path / "jobs")
        a = JobStore(root, worker_id="a", ttl=5.0)
        a.ensure_tasks(["cell"])
        a.heartbeat()
        assert a.claim("cell", retries=2).state == "acquired"
        b = JobStore(root, worker_id="b", ttl=5.0)
        b.ensure_tasks(["cell"])
        held = b.claim("cell", retries=2)
        assert held.state == "held" and held.holder == "a"
        assert b.stats.contended == 1

    def test_expired_lease_of_silent_worker_is_reclaimed(self, tmp_path):
        root = str(tmp_path / "jobs")
        a = JobStore(root, worker_id="a", ttl=0.1, skew=0.02)
        a.ensure_tasks(["cell"])
        assert a.claim("cell", retries=2).state == "acquired"
        # No heartbeat from a: after TTL + slack it is provably silent.
        time.sleep(0.2)
        b = JobStore(root, worker_id="b", ttl=0.1, skew=0.02)
        b.ensure_tasks(["cell"])
        claim = b.claim("cell", retries=2)
        assert claim.state == "acquired" and claim.reclaimed
        assert b.stats.reclaimed == 1
        assert any(e["event"] == "reclaim" for e in b.read_journal())

    def test_live_heartbeat_blocks_reclamation(self, tmp_path):
        # An expired lease whose worker still heartbeats means a skewed
        # clock or a long poll, not a dead process: never stolen.
        root = str(tmp_path / "jobs")
        a = JobStore(root, worker_id="a", ttl=0.1, skew=0.02)
        a.ensure_tasks(["cell"])
        assert a.claim("cell", retries=2).state == "acquired"
        time.sleep(0.2)
        a.heartbeat()
        b = JobStore(root, worker_id="b", ttl=0.1, skew=0.02)
        b.ensure_tasks(["cell"])
        assert b.claim("cell", retries=2).state == "held"

    def test_renew_extends_and_release_drops(self, tmp_path):
        root = str(tmp_path / "jobs")
        a = JobStore(root, worker_id="a", ttl=5.0)
        a.ensure_tasks(["cell"])
        a.claim("cell", retries=2)
        assert a.renew("cell")
        b = JobStore(root, worker_id="b", ttl=5.0)
        b.ensure_tasks(["cell"])
        assert not b.renew("cell")  # not the owner
        a.release("cell")
        assert b.claim("cell", retries=2).state == "acquired"

    def test_duplicate_completion_detected_not_fatal(self, tmp_path):
        root = str(tmp_path / "jobs")
        a = JobStore(root, worker_id="a", ttl=5.0)
        a.ensure_tasks(["cell"])
        b = JobStore(root, worker_id="b", ttl=5.0)
        b.ensure_tasks(["cell"])
        assert a.complete("cell", {"v": 1}, 1)
        assert not b.complete("cell", {"v": 1}, 1)  # first wins
        assert b.stats.duplicates == 1
        assert b.collect()["cell"].worker == "a"
        assert any(e["event"] == "duplicate" for e in b.read_journal())

    def test_failures_accumulate_to_dead_letter(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"), worker_id="w", ttl=5.0)
        store.ensure_tasks(["cell"])
        store.claim("cell", retries=1)
        assert store.fail("cell", "first failure", retries=1) == "retry"
        claim = store.claim("cell", retries=1)
        assert claim.state == "acquired" and claim.attempt == 2
        assert store.fail("cell", "second failure", retries=1) == \
            "dead-letter"
        assert store.claim("cell", retries=1).state == "dead"
        outcome = store.collect()["cell"]
        assert outcome.status == "dead-letter"
        assert outcome.attempts == 2
        assert "second failure" in outcome.error
        assert store.stats.dead_letter == 1

    def test_corrupt_result_quarantined_and_recomputable(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"), worker_id="w", ttl=5.0)
        store.ensure_tasks(["cell"])
        store.claim("cell", retries=2)
        store.complete("cell", {"v": 1}, 1)
        results = os.path.join(store.root, "results")
        name = [n for n in os.listdir(results) if n.endswith(".json")][0]
        path = os.path.join(results, name)
        raw = bytearray(open(path, "rb").read())
        raw[5] ^= 0x20
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        assert store.collect() == {}  # damage reads as absence
        assert store.stats.quarantined == 1
        # ... which makes the cell claimable (recomputable) again.
        assert store.claim("cell", retries=2).state == "acquired"

    def test_torn_journal_lines_skipped(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"), worker_id="w", ttl=5.0)
        store.ensure_tasks(["cell"])
        store.journal("claim", "cell")
        with open(os.path.join(store.root, "journal.jsonl"), "a") as f:
            f.write('{"event": "compl')  # the kill landed here
        store.journal("complete", "cell")
        events = [e["event"] for e in store.read_journal()]
        assert events == ["claim", "complete"]

    def test_lease_ttl_env(self, monkeypatch, tmp_path):
        from repro.jobs import LEASE_TTL_ENV, lease_ttl
        monkeypatch.delenv(LEASE_TTL_ENV, raising=False)
        assert lease_ttl(7.0) == 7.0
        monkeypatch.setenv(LEASE_TTL_ENV, "2.5")
        assert lease_ttl() == 2.5
        assert JobStore(str(tmp_path / "j"), worker_id="w").ttl == 2.5
        monkeypatch.setenv(LEASE_TTL_ENV, "0")
        with pytest.raises(JobStoreError, match="positive"):
            lease_ttl()
        monkeypatch.setenv(LEASE_TTL_ENV, "soon")
        with pytest.raises(JobStoreError, match="not a number"):
            lease_ttl()


# -- durable run_cells --------------------------------------------------

class TestDurableRunCells:
    def test_single_worker_matches_plain_run(self, tmp_path):
        tasks = [(f"c{i}", i) for i in range(5)]
        plain, _ = run_cells(tasks, double,
                             ExecutorPolicy(jobs=2, backoff=0.01))
        durable, stats = run_cells(
            tasks, double,
            ExecutorPolicy(jobs=2, backoff=0.01, poll=0.02,
                           job_dir=str(tmp_path / "jobs")))
        assert {k: o.value for k, o in durable.items()} == \
            {k: o.value for k, o in plain.items()}
        assert all(o.status == "ok" for o in durable.values())
        assert stats.completed == 5
        assert stats.store_stats["completed"] == 5
        assert stats.reclaimed == 0 and stats.duplicates == 0

    def test_restart_serves_results_from_store(self, tmp_path):
        job_dir = str(tmp_path / "jobs")
        tasks = [(f"c{i}", i) for i in range(4)]
        run_cells(tasks, double,
                  ExecutorPolicy(jobs=2, backoff=0.01, poll=0.02,
                                 job_dir=job_dir))
        # A rerun with a worker that would fail proves nothing re-runs:
        # every cell is ingested from the durable store.
        outcomes, stats = run_cells(
            tasks, boom,
            ExecutorPolicy(jobs=2, backoff=0.01, poll=0.02,
                           job_dir=job_dir))
        assert {k: o.value for k, o in outcomes.items()} == \
            {f"c{i}": 2 * i for i in range(4)}
        assert stats.completed == 0  # nothing executed locally

    def test_exhausted_retries_dead_letter_across_runs(self, tmp_path):
        job_dir = str(tmp_path / "jobs")
        outcomes, stats = run_cells(
            [("bad", 1)], boom,
            ExecutorPolicy(jobs=1, retries=1, backoff=0.01, poll=0.02,
                           job_dir=job_dir))
        assert outcomes["bad"].status == "dead-letter"
        assert outcomes["bad"].attempts == 2
        assert "ValueError" in outcomes["bad"].error
        assert stats.dead_letter == ["bad"]
        # A later run sees the durable dead letter, not a fresh budget.
        rerun, rerun_stats = run_cells(
            [("bad", 1)], double,
            ExecutorPolicy(jobs=1, retries=1, backoff=0.01, poll=0.02,
                           job_dir=job_dir))
        assert rerun["bad"].status == "dead-letter"
        assert rerun_stats.completed == 0

    def test_sigkilled_worker_is_reclaimed_by_survivor(self, tmp_path):
        # Satellite drill: two workers, one SIGKILLed mid-cell; the
        # survivor must finish all cells and return the complete set,
        # equal to a fresh single-process run.
        job_dir = str(tmp_path / "jobs")
        ready = str(tmp_path / "victim-ready")
        tasks = [(f"c{i}", i) for i in range(4)]
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(target=_drive_blocking,
                             args=(job_dir, tasks, ready))
        victim.start()
        try:
            deadline = time.monotonic() + 20.0
            leases = os.path.join(job_dir, "leases")
            while time.monotonic() < deadline:
                if os.path.isdir(leases) and any(
                        n.endswith(".json") for n in os.listdir(leases)):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim never claimed a cell")
            os.killpg(victim.pid, signal.SIGKILL)
        finally:
            if victim.is_alive():
                try:
                    os.killpg(victim.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            victim.join(timeout=10.0)

        outcomes, stats = run_cells(
            tasks, double,
            ExecutorPolicy(jobs=2, backoff=0.01, poll=0.02,
                           job_dir=job_dir, lease_ttl=0.4))
        assert {k: o.value for k, o in outcomes.items()} == \
            {f"c{i}": 2 * i for i in range(4)}
        assert all(o.status == "ok" for o in outcomes.values())
        assert stats.reclaimed >= 1  # the victim's lease was stolen
        # The merged result equals a fresh single-process run.
        fresh, _ = run_cells(tasks, double,
                             ExecutorPolicy(jobs=1, backoff=0.01))
        assert {k: o.value for k, o in outcomes.items()} == \
            {k: o.value for k, o in fresh.items()}

    def test_two_cooperating_workers_merge_identically(self, tmp_path):
        job_dir = str(tmp_path / "jobs")
        stats_path = str(tmp_path / "peer.json")
        tasks = [(f"c{i}", i) for i in range(8)]
        ctx = multiprocessing.get_context("fork")
        peer = ctx.Process(target=_drive_and_dump,
                           args=(job_dir, tasks, stats_path))
        peer.start()
        try:
            outcomes, _ = run_cells(
                tasks, double,
                ExecutorPolicy(jobs=2, backoff=0.01, poll=0.02,
                               job_dir=job_dir, lease_ttl=0.4))
        finally:
            peer.join(timeout=30.0)
        assert peer.exitcode == 0
        with open(stats_path) as handle:
            view = json.load(handle)
        expected = {f"c{i}": 2 * i for i in range(8)}
        # Both processes return the COMPLETE merged outcome set,
        # whoever computed each cell.
        assert {k: o.value for k, o in outcomes.items()} == expected
        assert view["values"] == expected
        assert set(view["statuses"].values()) == {"ok"}
