"""Tests for the end-to-end de-synchronization flow and its pieces."""

import pytest

from repro.desync import (
    DesyncOptions,
    HandshakeMode,
    cluster_registers,
    desynchronize,
    latchify,
    master_name,
    slave_name,
    register_level_edges,
)
from repro.netlist import CellKind, Netlist
from repro.sim import CycleSimulator, LatchCycleSimulator
from repro.utils.errors import DesyncError

from tests.circuits import (
    inverter_pipeline,
    lfsr3,
    mixed_feedback,
    ripple_counter,
    wide_register_exchange,
)


class TestOptionsDigest:
    def test_digest_is_stable_and_order_independent(self):
        base = DesyncOptions(margin=0.2, strategy="single")
        # Keyword order is construction detail, not configuration.
        reordered = DesyncOptions(strategy="single", margin=0.2)
        assert base.digest() == reordered.digest()
        assert len(base.digest()) == 64
        int(base.digest(), 16)  # hex sha256

    def test_explicit_defaults_equal_implicit_defaults(self):
        implicit = DesyncOptions()
        explicit = DesyncOptions(mode=HandshakeMode.OVERLAP,
                                 validate_model=True, strategy="scc",
                                 sync_banks=())
        assert implicit.digest() == explicit.digest()

    def test_normalized_forms_share_a_digest(self):
        # String mode and list sync_banks normalize in __post_init__,
        # so they must digest identically to the canonical forms.
        assert DesyncOptions(mode="serial").digest() == \
            DesyncOptions(mode=HandshakeMode.SERIAL).digest()
        assert DesyncOptions(sync_banks=["r0"]).digest() == \
            DesyncOptions(sync_banks=("r0",)).digest()

    def test_any_semantic_change_changes_the_digest(self):
        base = DesyncOptions()
        assert base.digest() != DesyncOptions(margin=0.11).digest()
        assert base.digest() != \
            DesyncOptions(mode=HandshakeMode.SERIAL).digest()
        assert base.digest() != \
            DesyncOptions(validate_model=False).digest()
        assert base.digest() != \
            DesyncOptions(sync_banks=("r0",)).digest()


class TestLatchify:
    def test_replaces_every_ff_with_latch_pair(self):
        sync = lfsr3()
        latched = latchify(sync)
        assert not latched.dff_instances()
        assert len(latched.latch_instances()) == 2 * len(sync.dff_instances())

    def test_master_slave_cells(self):
        latched = latchify(lfsr3())
        master = latched.instances[master_name("r0/b")]
        slave = latched.instances[slave_name("r0/b")]
        assert master.cell.kind is CellKind.LATCH_LOW
        assert slave.cell.kind is CellKind.LATCH_HIGH
        assert slave.data_net() is master.output_net()

    def test_preserves_ports(self):
        sync = inverter_pipeline()
        latched = latchify(sync)
        assert latched.inputs == sync.inputs
        assert latched.outputs == sync.outputs
        assert latched.clock == "clk"

    def test_rejects_latch_designs(self):
        latched = latchify(lfsr3())
        with pytest.raises(DesyncError):
            latchify(latched)

    def test_rejects_unclocked(self):
        netlist = Netlist("noclk")
        a = netlist.add_input("a")
        netlist.add_gate("INV", [a], name="i")
        with pytest.raises(DesyncError):
            latchify(netlist)

    def test_latched_circuit_matches_ff_reference(self):
        """The latch-based circuit is cycle-equivalent to the FF one."""
        sync = lfsr3()
        latched = latchify(sync)
        ff_sim = CycleSimulator(sync)
        latch_sim = LatchCycleSimulator(latched)
        ff_sim.run(20)
        latch_sim.run(20)
        for ff in sync.dff_instances():
            assert (latch_sim.captures[master_name(ff.name)]
                    == ff_sim.captures[ff.name])


class TestClustering:
    def test_register_edges_found(self):
        banks, edges = register_level_edges(lfsr3())
        assert set(banks) == {"r0", "r1", "r2"}
        assert ("r0", "r1") in edges
        assert ("r2", "r0") in edges

    def test_lfsr_is_one_scc(self):
        clustering = cluster_registers(lfsr3())
        assert len(clustering.clusters) == 1
        only = next(iter(clustering.clusters.values()))
        assert sorted(only.registers) == ["r0", "r1", "r2"]
        assert only.has_self_edge

    def test_pipeline_is_all_separate(self):
        clustering = cluster_registers(inverter_pipeline(4))
        assert len(clustering.clusters) == 4
        assert len(clustering.edges) == 3
        assert not any(c.has_self_edge for c in clustering.clusters.values())

    def test_mutual_registers_merge(self):
        clustering = cluster_registers(wide_register_exchange())
        assert len(clustering.clusters) == 1

    def test_mixed_structure(self):
        clustering = cluster_registers(mixed_feedback())
        assert len(clustering.clusters) == 3
        acc = clustering.clusters[clustering.cluster_of["acc"]]
        assert acc.has_self_edge

    def test_edges_are_acyclic(self):
        import networkx as nx
        clustering = cluster_registers(mixed_feedback())
        graph = nx.DiGraph(list(clustering.edges))
        assert nx.is_directed_acyclic_graph(graph)

    def test_describe(self):
        text = cluster_registers(lfsr3()).describe()
        assert "controller domains" in text


class TestFlowStructure:
    def test_clock_port_removed(self):
        result = desynchronize(lfsr3())
        assert "clk" not in result.desync_netlist.inputs
        assert result.desync_netlist.clock is None

    def test_latches_preserved(self):
        result = desynchronize(lfsr3())
        assert (len(result.desync_netlist.latch_instances())
                == 2 * len(result.sync_netlist.dff_instances()))

    def test_model_is_live_and_consistent(self):
        result = desynchronize(mixed_feedback())
        result.model.check_model()

    def test_cycle_time_positive(self):
        result = desynchronize(ripple_counter())
        assert result.desync_cycle_time().cycle_time > 0

    def test_sync_period_positive(self):
        result = desynchronize(ripple_counter())
        assert result.sync_period() > 0

    def test_overhead_summary(self):
        result = desynchronize(lfsr3())
        summary = result.overhead_summary()
        assert summary["desync_area"] > summary["sync_area"]
        assert summary["controller_area"] > 0

    def test_describe(self):
        assert "controller domains" in desynchronize(lfsr3()).describe()

    def test_matched_delay_covers_stage(self):
        result = desynchronize(mixed_feedback())
        for (pred, succ), plan in result.network.delay_plans.items():
            stage = result.stage_max[(pred, succ)]
            assert plan.achieved >= stage  # at least the raw stage delay

    def test_clock_as_data_rejected(self):
        netlist = Netlist("bad")
        clk = netlist.add_input("clk", clock=True)
        bad = netlist.add_gate("INV", [clk], name="abuse")
        netlist.add("DFF", name="r/b", D=bad, CK=clk, Q="q")
        netlist.add_output("q")
        with pytest.raises(DesyncError):
            desynchronize(netlist)

    def test_serial_mode_builds(self):
        result = desynchronize(lfsr3(),
                               DesyncOptions(mode=HandshakeMode.SERIAL))
        assert result.network.mode is HandshakeMode.SERIAL
        result.model.check_model()

    def test_spec_model_builds(self):
        spec = desynchronize(inverter_pipeline(3)).spec_model()
        spec.check_model()
        # One signal per latch bank: two per register.
        assert len(spec.signals()) == 6


class TestHoldVerification:
    def test_serial_mode_has_positive_margins(self):
        result = desynchronize(inverter_pipeline(4),
                               DesyncOptions(mode=HandshakeMode.SERIAL))
        checks = result.verify_hold()
        assert checks
        assert all(check.ok for check in checks)

    def test_fabric_measurement_runs(self):
        result = desynchronize(mixed_feedback())
        checks = result.verify_hold(use_model=False)
        assert len(checks) == len(result.clustering.edges)


class TestPerformanceShape:
    def test_overlap_faster_than_serial_on_pipelines(self):
        pipeline = inverter_pipeline(5)
        overlap = desynchronize(pipeline,
                                DesyncOptions(mode=HandshakeMode.OVERLAP))
        serial = desynchronize(inverter_pipeline(5),
                               DesyncOptions(mode=HandshakeMode.SERIAL))
        assert (overlap.desync_cycle_time().cycle_time
                < serial.desync_cycle_time().cycle_time)

    def test_overlap_period_does_not_scale_with_depth(self):
        shallow = desynchronize(inverter_pipeline(3))
        deep = desynchronize(inverter_pipeline(8))
        ratio = (deep.desync_cycle_time().cycle_time
                 / shallow.desync_cycle_time().cycle_time)
        assert ratio < 1.5
