"""Tests for the Petri net substrate and marked-graph properties."""

import pytest

from repro.petri import MarkedGraph, PetriNet, petri_to_dot, marked_graph_to_dot
from repro.utils.errors import NotAMarkedGraphError, PetriError


def producer_consumer() -> PetriNet:
    net = PetriNet("pc")
    net.add_place("empty", tokens=1)
    net.add_place("full")
    net.add_transition("produce")
    net.add_transition("consume")
    net.add_arc("empty", "produce")
    net.add_arc("produce", "full")
    net.add_arc("full", "consume")
    net.add_arc("consume", "empty")
    return net


class TestPetriNet:
    def test_enabling(self):
        net = producer_consumer()
        marking = net.marking()
        assert net.is_enabled(marking, "produce")
        assert not net.is_enabled(marking, "consume")

    def test_fire(self):
        net = producer_consumer()
        marking = net.fire(net.marking(), "produce")
        assert marking == {"full": 1}
        assert net.is_enabled(marking, "consume")

    def test_fire_disabled_raises(self):
        net = producer_consumer()
        with pytest.raises(PetriError):
            net.fire(net.marking(), "consume")

    def test_fire_does_not_mutate_input(self):
        net = producer_consumer()
        marking = net.marking()
        net.fire(marking, "produce")
        assert marking == {"empty": 1}

    def test_fire_sequence(self):
        net = producer_consumer()
        final = net.fire_sequence(net.marking(),
                                  ["produce", "consume", "produce"])
        assert final == {"full": 1}

    def test_duplicate_place(self):
        net = PetriNet("t")
        net.add_place("p")
        with pytest.raises(PetriError):
            net.add_place("p")

    def test_bad_arc(self):
        net = PetriNet("t")
        net.add_place("p")
        net.add_place("q")
        with pytest.raises(PetriError):
            net.add_arc("p", "q")

    def test_reachability(self):
        net = producer_consumer()
        markings = net.reachable_markings()
        assert len(markings) == 2

    def test_boundedness(self):
        net = producer_consumer()
        assert net.is_bounded(1)

    def test_unbounded_detection(self):
        net = PetriNet("gen")
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("t", "p")  # pure producer: unbounded
        with pytest.raises(PetriError):
            net.reachable_markings(max_states=50)

    def test_deadlock_detection(self):
        net = PetriNet("dead")
        net.add_place("p")  # no tokens
        net.add_transition("t")
        net.add_arc("p", "t")
        assert net.has_deadlock()
        assert not producer_consumer().has_deadlock()


def two_stage_ring(tokens_a: int = 1, tokens_b: int = 0) -> MarkedGraph:
    mg = MarkedGraph("ring2")
    mg.add_transition("t0", delay=10.0)
    mg.add_transition("t1", delay=20.0)
    mg.connect("t0", "t1", tokens=tokens_a)
    mg.connect("t1", "t0", tokens=tokens_b)
    return mg


class TestMarkedGraph:
    def test_connect_builds_places(self):
        mg = two_stage_ring()
        mg.check_structure()
        assert len(mg.edges()) == 2

    def test_structure_violation(self):
        net = MarkedGraph("bad")
        net.add_transition("a")
        net.add_transition("b")
        net.add_place("shared", tokens=1)
        net.add_arc("shared", "a")
        net.add_arc("shared", "b")  # two consumers
        net.add_arc("a", "shared")
        with pytest.raises(NotAMarkedGraphError):
            net.check_structure()

    def test_liveness_with_token(self):
        assert two_stage_ring(1, 0).is_live()

    def test_liveness_fails_token_free_cycle(self):
        assert not two_stage_ring(0, 0).is_live()

    def test_safety(self):
        assert two_stage_ring(1, 0).is_safe()

    def test_two_tokens_on_two_ring_not_safe(self):
        # Firing t0 adds a token to the already-marked t0->t1 place.
        assert not two_stage_ring(1, 1).is_safe()

    def test_two_coupled_unit_token_rings_are_safe(self):
        # Safe iff every place lies on a cycle with exactly one token:
        # two rings sharing a transition, one token each.
        mg = MarkedGraph("eight")
        for name in ("hub", "a", "b"):
            mg.add_transition(name)
        mg.connect("hub", "a", tokens=1)
        mg.connect("a", "hub", tokens=0)
        mg.connect("hub", "b", tokens=0)
        mg.connect("b", "hub", tokens=1)
        assert mg.is_safe()

    def test_unsafe_marking(self):
        mg = two_stage_ring(2, 0)
        assert not mg.is_safe()

    def test_successors_predecessors(self):
        mg = two_stage_ring()
        assert mg.successors("t0") == ["t1"]
        assert mg.predecessors("t0") == ["t1"]

    def test_token_invariant_under_firing(self):
        mg = two_stage_ring(1, 1)
        marking = mg.marking()
        for transition in ("t0", "t1", "t0"):
            marking = mg.fire(marking, transition)
        assert sum(marking.values()) == 2  # cycle token count invariant

    def test_simple_cycles(self):
        cycles = two_stage_ring().simple_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"t0", "t1"}

    def test_edge_delay(self):
        mg = MarkedGraph("d")
        mg.add_transition("a")
        mg.add_transition("b")
        edge = mg.connect("a", "b", tokens=1, delay=42.0)
        assert mg.edge_delay(edge.place) == 42.0


class TestDotExport:
    def test_petri_dot(self):
        dot = petri_to_dot(producer_consumer())
        assert '"produce"' in dot

    def test_marked_graph_dot(self):
        dot = marked_graph_to_dot(two_stage_ring())
        assert '"t0" -> "t1"' in dot
