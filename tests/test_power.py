"""Tests for the power, clock-tree and EMI models."""

import numpy as np
import pytest

from repro.desync import desynchronize
from repro.netlist import GENERIC
from repro.power import (
    ActivityProfile,
    build_clock_tree,
    current_profile,
    dynamic_power,
    fabric_cycle_energy,
    fabric_power_mw,
    from_cycle_simulation,
    sequential_clock_pin_energy,
    spectrum,
)
from repro.sim import CycleSimulator, EventSimulator

from tests.circuits import ripple_counter


class TestClockTree:
    def test_scaling_with_sinks(self):
        small = build_clock_tree(64, 3.5, 50_000, GENERIC)
        large = build_clock_tree(1024, 3.5, 400_000, GENERIC)
        assert large.n_buffers > small.n_buffers
        assert large.total_cap_ff > small.total_cap_ff
        assert large.area_um2 > small.area_um2

    def test_power_at_period(self):
        tree = build_clock_tree(128, 3.5, 100_000, GENERIC)
        assert tree.power_mw(2000.0) == pytest.approx(
            tree.energy_per_cycle_fj / 2000.0)

    def test_needs_sinks(self):
        with pytest.raises(ValueError):
            build_clock_tree(0, 3.5, 1000, GENERIC)


class TestDynamicPower:
    def test_counter_power_positive(self):
        netlist = ripple_counter(4)
        sim = CycleSimulator(netlist)
        sim.run(64)
        activity = from_cycle_simulation(netlist, sim.toggle_counts, 64,
                                         1000.0)
        report = dynamic_power(netlist, activity)
        assert report.total_mw > 0
        assert report.group("logic") > 0
        assert report.group("sequential") > 0

    def test_clock_tree_term(self):
        netlist = ripple_counter(4)
        tree = build_clock_tree(4, 3.5, netlist.total_area() * 2, GENERIC)
        activity = ActivityProfile(toggles={}, duration_ps=1000.0, cycles=1)
        report = dynamic_power(netlist, activity, clock_tree=tree,
                               period_ps=1000.0)
        assert report.group("clock_tree") == pytest.approx(
            tree.power_mw(1000.0))

    def test_clock_tree_requires_period(self):
        netlist = ripple_counter(4)
        tree = build_clock_tree(4, 3.5, 1000, GENERIC)
        activity = ActivityProfile(toggles={}, duration_ps=1.0, cycles=1)
        with pytest.raises(ValueError):
            dynamic_power(netlist, activity, clock_tree=tree)

    def test_zero_duration(self):
        report = dynamic_power(ripple_counter(3),
                               ActivityProfile(duration_ps=0.0))
        assert report.total_mw == 0.0

    def test_describe(self):
        report = dynamic_power(ripple_counter(3),
                               ActivityProfile(toggles={"q[0]": 4},
                                               duration_ps=100.0, cycles=1))
        assert "dynamic power" in report.describe()


class TestFabricPower:
    def test_fabric_energy_positive(self):
        result = desynchronize(ripple_counter(4))
        energy = fabric_cycle_energy(result.network)
        assert energy > 0
        assert fabric_power_mw(
            result.network,
            result.desync_cycle_time().cycle_time) == pytest.approx(
                energy / result.desync_cycle_time().cycle_time)

    def test_fabric_estimate_matches_event_sim(self):
        """The 2-transitions-per-cycle fabric accounting matches the
        event-driven simulation to first order."""
        result = desynchronize(ripple_counter(4))
        cycle = result.desync_cycle_time().cycle_time
        sim = EventSimulator(result.desync_netlist, record_energy=True)
        cycles = 24
        sim.run(cycles * cycle)
        from repro.power.power import classify_instance
        fabric_energy = 0.0
        for time, energy in sim.energy_events:
            fabric_energy += energy  # total switching energy
        estimate = (fabric_cycle_energy(result.network) * cycles)
        # Fabric dominates a counter's total energy; the analytic
        # estimate must land within a factor of two of the simulation.
        assert 0.5 * estimate < fabric_energy < 3.0 * estimate

    def test_sequential_clock_pin_energy(self):
        netlist = ripple_counter(4)
        assert sequential_clock_pin_energy(netlist) == pytest.approx(
            4 * GENERIC["DFF"].input_cap * GENERIC.voltage ** 2)


class TestEmi:
    def test_profile_binning(self):
        events = [(10.0, 5.0), (10.0, 5.0), (120.0, 2.0)]
        profile = current_profile(events, bin_ps=50.0, duration_ps=200.0)
        assert profile.energy_fj[0] == pytest.approx(10.0)
        assert profile.energy_fj[2] == pytest.approx(2.0)

    def test_skip_transient(self):
        events = [(10.0, 100.0), (500.0, 1.0)]
        profile = current_profile(events, bin_ps=50.0, skip_ps=100.0)
        assert profile.energy_fj.sum() == pytest.approx(1.0)

    def test_periodic_profile_has_tonal_spectrum(self):
        # Impulses every 10 bins -> strong line at 1/(10 bins).
        events = [(float(t), 10.0) for t in range(0, 10_000, 500)]
        profile = current_profile(events, bin_ps=50.0, duration_ps=10_000)
        spec = spectrum(profile)
        flat = np.ones_like(profile.energy_fj)
        flat_spec = spectrum(current_profile(
            [(i * 50.0 + 1, 1.0) for i in range(len(flat))],
            bin_ps=50.0, duration_ps=10_000))
        assert spec.spectral_flatness < flat_spec.spectral_flatness
        assert spec.peak_line > 0

    def test_crest_factor_sync_vs_desync(self):
        result = desynchronize(ripple_counter(4))
        period = result.sync_period()
        sync_sim = EventSimulator(ripple_counter(4), record_energy=True)
        sync_sim.add_clock("clk", period=period, until=25 * period)
        sync_sim.run(25 * period)
        desync_sim = EventSimulator(result.desync_netlist,
                                    record_energy=True)
        desync_sim.run(25 * result.desync_cycle_time().cycle_time)
        sp = current_profile(sync_sim.energy_events, bin_ps=period / 20,
                             skip_ps=4 * period)
        dp = current_profile(desync_sim.energy_events, bin_ps=period / 20,
                             skip_ps=4 * period)
        assert (dp.peak_power_mw / dp.average_power_mw
                < sp.peak_power_mw / sp.average_power_mw)
