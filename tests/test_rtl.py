"""Tests for the RTL construction language and gate lowering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl import RtlModule, const, mux, mux_many
from repro.sim import CycleSimulator
from repro.utils.errors import RtlError

WIDTH = 8
MASK = (1 << WIDTH) - 1


def _signed(value: int) -> int:
    return value - (1 << WIDTH) if value & (1 << (WIDTH - 1)) else value


def build_alu_module():
    module = RtlModule("alu")
    a = module.input("a", WIDTH)
    b = module.input("b", WIDTH)
    module.output("add", a + b)
    module.output("sub", a - b)
    module.output("and_", a & b)
    module.output("or_", a | b)
    module.output("xor_", a ^ b)
    module.output("not_", ~a)
    module.output("eq", a.eq(b))
    module.output("ltu", a.lt_unsigned(b))
    module.output("lts", a.lt_signed(b))
    module.output("ror", a.reduce_or())
    module.output("rand", a.reduce_and())
    return module.build()


@pytest.fixture(scope="module")
def alu_sim():
    return CycleSimulator(build_alu_module())


class TestCombinationalOps:
    @given(a=st.integers(0, MASK), b=st.integers(0, MASK))
    @settings(max_examples=60, deadline=None)
    def test_against_python_semantics(self, alu_sim, a, b):
        alu_sim.drive_vector("a", a, WIDTH)
        alu_sim.drive_vector("b", b, WIDTH)
        alu_sim.evaluate()
        assert alu_sim.read_vector("add", WIDTH) == (a + b) & MASK
        assert alu_sim.read_vector("sub", WIDTH) == (a - b) & MASK
        assert alu_sim.read_vector("and_", WIDTH) == a & b
        assert alu_sim.read_vector("or_", WIDTH) == a | b
        assert alu_sim.read_vector("xor_", WIDTH) == a ^ b
        assert alu_sim.read_vector("not_", WIDTH) == (~a) & MASK
        assert alu_sim.read_vector("eq", 1) == int(a == b)
        assert alu_sim.read_vector("ltu", 1) == int(a < b)
        assert alu_sim.read_vector("lts", 1) == int(_signed(a) < _signed(b))
        assert alu_sim.read_vector("ror", 1) == int(a != 0)
        assert alu_sim.read_vector("rand", 1) == int(a == MASK)


class TestShifts:
    @given(a=st.integers(0, MASK), amount=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_variable_shifts(self, a, amount):
        module = RtlModule("sh")
        value = module.input("v", WIDTH)
        shamt = module.input("s", 3)
        module.output("shl", value.shift_left(shamt))
        module.output("shr", value.shift_right(shamt))
        module.output("sra", value.shift_right_arith(shamt))
        sim = CycleSimulator(module.build())
        sim.drive_vector("v", a, WIDTH)
        sim.drive_vector("s", amount, 3)
        sim.evaluate()
        assert sim.read_vector("shl", WIDTH) == (a << amount) & MASK
        assert sim.read_vector("shr", WIDTH) == a >> amount
        assert sim.read_vector("sra", WIDTH) == (_signed(a) >> amount) & MASK

    def test_constant_shift(self):
        module = RtlModule("shc")
        value = module.input("v", WIDTH)
        module.output("out", value.shift_left(3))
        sim = CycleSimulator(module.build())
        sim.drive_vector("v", 0b1011, WIDTH)
        sim.evaluate()
        assert sim.read_vector("out", WIDTH) == (0b1011 << 3) & MASK


class TestStructure:
    def test_slice_concat_extend(self):
        module = RtlModule("s")
        value = module.input("v", 8)
        module.output("hi", value[4:8])
        module.output("cat", value[0:4].concat(value[4:8]))
        module.output("zext", value[0:4].zero_extend(8))
        module.output("sext", value[0:4].sign_extend(8))
        sim = CycleSimulator(module.build())
        sim.drive_vector("v", 0xA5, 8)
        sim.evaluate()
        assert sim.read_vector("hi", 4) == 0xA
        assert sim.read_vector("cat", 8) == 0xA5
        assert sim.read_vector("zext", 8) == 0x05
        assert sim.read_vector("sext", 8) == 0x05
        sim.drive_vector("v", 0xA8, 8)
        sim.evaluate()
        assert sim.read_vector("sext", 8) == 0xF8  # sign bit set

    def test_mux_many(self):
        module = RtlModule("m")
        sel = module.input("sel", 2)
        options = [const(v, 8) for v in (11, 22, 33, 44)]
        module.output("out", mux_many(sel, options))
        sim = CycleSimulator(module.build())
        for index, expect in enumerate((11, 22, 33, 44)):
            sim.drive_vector("sel", index, 2)
            sim.evaluate()
            assert sim.read_vector("out", 8) == expect

    def test_width_mismatch_rejected(self):
        module = RtlModule("w")
        a = module.input("a", 8)
        b = module.input("b", 4)
        with pytest.raises(RtlError):
            _ = a + b

    def test_mux_select_width(self):
        with pytest.raises(RtlError):
            mux(const(0, 2), const(0, 4), const(0, 4))

    def test_slice_out_of_range(self):
        module = RtlModule("x")
        a = module.input("a", 4)
        with pytest.raises(RtlError):
            _ = a[7]


class TestRegisters:
    def test_register_requires_next(self):
        module = RtlModule("r")
        module.reg("state", 4)
        with pytest.raises(RtlError):
            module.build()

    def test_register_init_and_update(self):
        module = RtlModule("r")
        state = module.reg("state", 4, init=5)
        state.next = state.bus + const(1, 4)
        sim = CycleSimulator(module.build())
        assert sim.read_vector("state_q", 4) == 5
        sim.step()
        assert sim.read_vector("state_q", 4) == 6

    def test_register_bank_naming(self):
        module = RtlModule("r")
        state = module.reg("acc", 4)
        state.next = state.bus
        netlist = module.build()
        from repro.netlist import iter_register_banks
        banks = dict(iter_register_banks(netlist))
        assert "acc" in banks
        assert len(banks["acc"]) == 4
