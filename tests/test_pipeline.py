"""Tests for the staged de-synchronization pass pipeline.

Covers: behavioural pinning of ``desynchronize()`` across the corpus
(the wrapper must keep producing exactly what the monolithic flow
produced), pass sequencing and provenance, options validation,
clustering strategies verified end to end, partial (hybrid sync/async)
conversion including boundary-bridge mutation localization, baseline
pass sequences, and the sweep driver.
"""

import hashlib
import json

import pytest

from repro.corpus import generate
from repro.desync import (
    CLUSTERING_STRATEGIES,
    DesyncOptions,
    HandshakeMode,
    PipelineVariant,
    build_pipeline,
    cluster_registers,
    desynchronize,
    make_result,
    run_pipeline,
    sweep_pipelines,
)
from repro.equiv import check_flow_equivalence, check_flow_equivalence_batch
from repro.utils.errors import DesyncError, OptionsError
from repro.verilog import netlist_signature

from tests.circuits import lfsr3, mixed_feedback

# ----------------------------------------------------------------------
# Behavioural pins: SHA-256 (truncated) over the de-synchronized
# netlist signature plus the headline analyses, captured from the
# pre-refactor monolithic desynchronize() on every corpus config.  If
# a pipeline change alters what the default flow emits, this fails
# loudly; update the pins only for *intentional* output changes.
# ----------------------------------------------------------------------
DESYNC_PINS = {
    "counter6": "4d469394288c3fce",
    "crc5": "9b13b4923c0075cc",
    "crc8": "d37e9e38ff4b917e",
    "diamond2x4": "3077b4a5e45cc22f",
    "fir5": "4ec98a6bbbed2f81",
    "fir8": "ad6853b36c2acbdc",
    "lfsr16": "76fa24f4254f1860",
    "lfsr8": "012c21ca9fa3b1ab",
    "mult2": "1fd084c051714259",
    "mult4": "e2fb4ef7def625b1",
    "pipe4x1": "5753043acdec809b",
    "pipe4x4": "937c08afd77e2f43",
    "pipe8x2": "6d4996d7346ce7b3",
}

# Serial-mode pins: the statically race-free discipline, including the
# fired-latch acknowledge cells and (on input-fed designs) the
# environment source domain.  fir8/fir10 are the wide-join shapes that
# exposed the two pre-fix acknowledge races; rnd8s3 is the
# multi-domain input-fed shape that motivated the environment domain.
SERIAL_DESYNC_PINS = {
    "counter6": "103472a427c0e782",
    "fir10": "c2cffd01f1c2fb8b",
    "fir8": "33c1fec3d5938aef",
    "pipe4x1": "a3e3d5e2dec1e4f9",
    "rnd8s3": "e383410de9b4140b",
}


def _fingerprint(result) -> str:
    payload = json.dumps({
        "signature": netlist_signature(result.desync_netlist),
        "domains": len(result.clustering.clusters),
        "edges": len(result.clustering.edges),
        "sync_period": round(result.sync_period(), 6),
        "desync_cycle": round(result.desync_cycle_time().cycle_time, 6),
        "area": round(result.desync_netlist.total_area(), 6),
    }, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class TestWrapperIdentity:
    @pytest.mark.parametrize("config", sorted(DESYNC_PINS))
    def test_desynchronize_output_pinned(self, config):
        result = desynchronize(generate(config))
        assert _fingerprint(result) == DESYNC_PINS[config]

    @pytest.mark.parametrize("config", sorted(SERIAL_DESYNC_PINS))
    def test_serial_output_pinned(self, config):
        result = desynchronize(
            generate(config), DesyncOptions(mode=HandshakeMode.SERIAL))
        assert _fingerprint(result) == SERIAL_DESYNC_PINS[config]

    def test_wrapper_equals_explicit_pipeline(self):
        netlist = generate("lfsr8")
        via_wrapper = desynchronize(netlist)
        via_pipeline = make_result(
            build_pipeline("desync").run(generate("lfsr8")))
        assert (netlist_signature(via_wrapper.desync_netlist)
                == netlist_signature(via_pipeline.desync_netlist))


class TestPassSequencing:
    def test_provenance_records_every_pass(self):
        ctx = run_pipeline(lfsr3())
        assert [r.name for r in ctx.records] == [
            "cluster", "partial", "matched-delay", "latchify",
            "controller-network"]
        assert ctx.records[0].info["strategy"] == "scc"
        assert "skipped" in ctx.records[1].info
        assert "controllers" in ctx.records[-1].info
        assert "pipeline 'desync'" in ctx.provenance()

    def test_result_carries_provenance(self):
        result = desynchronize(lfsr3())
        assert [r.name for r in result.provenance] == [
            "cluster", "partial", "matched-delay", "latchify",
            "controller-network"]

    def test_missing_artifact_is_located(self):
        from repro.desync import ControllerNetworkPass, FlowPipeline
        broken = FlowPipeline("broken", [ControllerNetworkPass()])
        with pytest.raises(DesyncError, match="artifact 'latched'"):
            broken.run(lfsr3())

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(DesyncError, match="unknown pipeline"):
            run_pipeline(lfsr3(), pipeline="nope")

    def test_model_only_context_has_no_desync_netlist(self):
        ctx = run_pipeline(lfsr3(), pipeline="doubly_latched")
        with pytest.raises(DesyncError, match="no controller network"):
            _ = ctx.desync_netlist
        with pytest.raises(DesyncError):
            make_result(ctx)


class TestOptionsValidation:
    @pytest.mark.parametrize("name", ["margin", "setup", "skew",
                                      "hold_slack"])
    def test_negative_numbers_rejected(self, name):
        with pytest.raises(OptionsError, match=name) as info:
            DesyncOptions(**{name: -0.5})
        assert info.value.field == name

    def test_unknown_mode_rejected(self):
        with pytest.raises(OptionsError, match="handshake mode"):
            DesyncOptions(mode="turbo")

    def test_mode_string_coerced(self):
        assert DesyncOptions(mode="serial").mode is HandshakeMode.SERIAL

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OptionsError, match="clustering strategy"):
            DesyncOptions(strategy="psychic")

    def test_bad_cluster_cap_rejected(self):
        with pytest.raises(OptionsError, match="cluster_cap"):
            DesyncOptions(strategy="greedy-cap", cluster_cap=0)

    def test_cap_on_capless_strategy_rejected(self):
        with pytest.raises(DesyncError, match="size cap"):
            cluster_registers(lfsr3(), strategy="scc", cap=4)

    def test_non_string_sync_banks_rejected(self):
        with pytest.raises(OptionsError, match="sync_banks"):
            DesyncOptions(sync_banks=(42,))

    def test_bare_string_sync_banks_rejected(self):
        # A bare string would silently split into per-character names.
        with pytest.raises(OptionsError, match="sync_banks"):
            DesyncOptions(sync_banks="st0")

    def test_bad_model_check_states_rejected(self):
        with pytest.raises(OptionsError, match="model_check_states"):
            DesyncOptions(model_check_states=0)


# Five corpus configs per strategy (the feed-forward set for
# per-register, which is structurally invalid on cyclic register
# graphs).  Equivalence-checked variants run the statically race-free
# SERIAL discipline except `single`, whose one-domain fabric is safe
# under the paper's OVERLAP default.
STRATEGY_CONFIGS = {
    ("scc", HandshakeMode.SERIAL): [
        "pipe4x1", "counter6", "crc5", "lfsr8", "fir5"],
    ("per-register", HandshakeMode.SERIAL): [
        "pipe4x1", "pipe8x2", "pipe4x4", "fir5", "diamond2x4"],
    ("single", HandshakeMode.OVERLAP): [
        "pipe4x1", "counter6", "crc5", "lfsr8", "fir8"],
    ("greedy-cap", HandshakeMode.SERIAL): [
        "pipe4x1", "pipe8x2", "pipe4x4", "fir5", "diamond2x4"],
}


class TestClusteringStrategies:
    def test_per_register_rejects_cyclic_designs(self):
        with pytest.raises(DesyncError, match="cyclic controller graph"):
            cluster_registers(lfsr3(), strategy="per-register")

    def test_single_merges_everything(self):
        clustering = cluster_registers(mixed_feedback(), strategy="single")
        assert len(clustering.clusters) == 1
        assert not clustering.edges

    def test_greedy_cap_respects_cap_and_acyclicity(self):
        import networkx as nx
        clustering = cluster_registers(generate("pipe8x2"),
                                       strategy="greedy-cap", cap=3)
        assert all(len(c.registers) <= 3
                   for c in clustering.clusters.values())
        assert len(clustering.clusters) < 8  # it did merge something
        graph = nx.DiGraph(list(clustering.edges))
        assert nx.is_directed_acyclic_graph(graph)

    def test_unknown_strategy_located(self):
        with pytest.raises(DesyncError, match="unknown clustering"):
            cluster_registers(lfsr3(), strategy="nope")

    @pytest.mark.parametrize(
        "strategy,mode,config",
        [(strategy, mode, config)
         for (strategy, mode), configs in STRATEGY_CONFIGS.items()
         for config in configs],
        ids=lambda value: getattr(value, "value", value))
    def test_strategy_flow_equivalent_and_hold_clean(self, strategy, mode,
                                                     config):
        options = DesyncOptions(
            mode=mode, strategy=strategy,
            cluster_cap=3 if strategy == "greedy-cap" else None)
        result = desynchronize(generate(config), options)
        reports = check_flow_equivalence_batch(result, seeds=(0, 1),
                                               cycles=10,
                                               backend="compiled")
        for seed, report in reports.items():
            assert report.equivalent, (seed, report.divergences[:3])
        assert all(check.ok for check in result.verify_hold(rounds=8))


class TestPartialDesync:
    def test_island_formed_with_bridges(self):
        result = desynchronize(
            generate("pipe4x4"),
            DesyncOptions(sync_banks=("st0", "st1")))
        assert result.sync_island == "st0"
        island = result.clustering.clusters["st0"]
        assert island.registers == ["st0", "st1"]
        assert len(result.clustering.clusters) == 3  # island + st2 + st3
        # The boundary bridge exists as real fabric.
        assert "tok:st0>st2/r" in result.desync_netlist.instances

    def test_register_names_select_their_domain(self):
        result = desynchronize(generate("pipe4x1"),
                               DesyncOptions(sync_banks=("st1",)))
        assert result.sync_island == "st1"

    def test_unknown_selection_located(self):
        with pytest.raises(OptionsError, match="sync_banks"):
            desynchronize(generate("pipe4x1"),
                          DesyncOptions(sync_banks=("ghost",)))

    def test_convex_closure_absorbs_bypass_paths(self):
        # diamond2x4: src forks into two branches that rejoin.  Keeping
        # only fork and join synchronous would wrap a handshake cycle
        # around the island, so the branches must be absorbed.
        netlist = generate("diamond2x4")
        base = cluster_registers(netlist)
        names = sorted(base.clusters)
        import networkx as nx
        graph = nx.DiGraph(list(base.edges))
        order = list(nx.topological_sort(graph))
        first, last = order[0], order[-1]
        result = desynchronize(netlist,
                               DesyncOptions(sync_banks=(first, last)))
        island = result.clustering.clusters[result.sync_island]
        assert set(island.registers) == set(names)  # everything absorbed

    def test_island_self_request_matches_critical_path(self):
        result = desynchronize(generate("pipe4x4"),
                               DesyncOptions(sync_banks=("st0", "st1")))
        key = (result.sync_island, result.sync_island)
        worst = max(result.timing.max_delay.values())
        assert result.stage_max[key] == pytest.approx(worst)
        assert result.clustering.clusters[result.sync_island].has_self_edge

    def test_partial_overlap_flow_equivalent(self):
        # The island merge removes the fine-grained edges whose hold
        # margins the full-overlap fabric violates on this shape: the
        # hybrid is overlap-safe where the full conversion is not.
        result = desynchronize(generate("pipe4x1"),
                               DesyncOptions(sync_banks=("st0", "st1")))
        reports = check_flow_equivalence_batch(result, seeds=(0, 1),
                                               cycles=10,
                                               backend="compiled")
        assert all(report.equivalent for report in reports.values())
        # The realized fabric's margins, not the model screen: the
        # model's eager schedule is a conservative warning filter (it
        # flags this fabric), while the measured local-clock edges show
        # the hybrid's actual hold slack is positive.
        checks = result.verify_hold(rounds=8, use_model=False)
        assert checks and all(check.ok for check in checks)

    def test_broken_boundary_bridge_localized(self):
        """Bypassing the matched delay of an island-boundary bridge must
        be caught at exactly the bridge's consumer register."""
        options = DesyncOptions(sync_banks=("st0", "st1"))
        result = desynchronize(generate("pipe4x1"), options)
        island = result.sync_island
        succ = sorted(result.clustering.successors(island))[0]
        netlist = result.desync_netlist
        token = netlist.instances[f"tok:{island}>{succ}/r"]
        raw = netlist.instances[f"dl:{island}>{succ}/d0"].input_nets()[0]
        delayed = token.pins["R"]
        delayed.sinks.remove((token, "R"))
        token.pins["R"] = raw
        raw.sinks.append((token, "R"))
        netlist.invalidate_query_caches()  # direct structural edit

        ipc = [{"din": k % 2} for k in range(12)]
        report = check_flow_equivalence(result, cycles=12,
                                        inputs_per_cycle=ipc)
        assert not report.equivalent
        first = report.divergences[0]
        assert first.register == f"{succ}/b"
        assert first.cycle == 1


class TestBaselinePipelines:
    @pytest.mark.parametrize("name", ["doubly_latched", "nonoverlap"])
    def test_models_live_and_consistent(self, name):
        ctx = run_pipeline(generate("pipe4x1"), pipeline=name)
        ctx.model.check_structure()
        assert ctx.model.is_live()
        ctx.model.check_consistency()
        assert ctx.desync_cycle_time().cycle_time > 0

    def test_nonoverlap_serializes(self):
        dlap = run_pipeline(generate("pipe4x1"), pipeline="doubly_latched")
        non = run_pipeline(generate("pipe4x1"), pipeline="nonoverlap")
        assert (non.desync_cycle_time().cycle_time
                > dlap.desync_cycle_time().cycle_time)

    def test_baseline_provenance_names_kind(self):
        ctx = run_pipeline(generate("pipe4x1"), pipeline="nonoverlap")
        assert ctx.records[-1].info["kind"] == "nonoverlap"
        # One controller per latch bank: two per register.
        assert ctx.records[-1].info["controllers"] == 8


class TestSweepDriver:
    def test_small_grid_shape_and_statuses(self):
        variants = [
            PipelineVariant("serial",
                            options=DesyncOptions(mode=HandshakeMode.SERIAL)),
            PipelineVariant("per-register-on-cyclic",
                            options=DesyncOptions(strategy="per-register",
                                                  mode=HandshakeMode.SERIAL)),
            PipelineVariant("dlap", pipeline="doubly_latched",
                            options=DesyncOptions(validate_model=False),
                            check_equivalence=False),
        ]
        columns, rows, summary = sweep_pipelines(configs=["pipe4x1", "lfsr8"],
                                                 variants=variants, seeds=(0,),
                                                 cycles=8)
        assert len(rows) == 6
        assert set(summary) == {"cells", "statuses", "desync_engines",
                                "fallback_reasons"}
        assert summary["cells"] == 6
        assert sum(summary["statuses"].values()) == 6
        assert summary["statuses"]["ok"] >= 1
        # Status aggregation folds parameterized suffixes ("invalid: ...")
        # into their family.
        assert "invalid" in summary["statuses"]
        assert summary["desync_engines"].get("replay", 0) >= 1
        cells = [dict(zip(columns, row)) for row in rows]
        by = {(c["config"], c["variant"]): c for c in cells}
        assert by[("pipe4x1", "serial")]["status"] == "ok"
        assert by[("pipe4x1", "serial")]["equiv_ok"] is True
        # per-register is structurally invalid on the cyclic LFSR: the
        # sweep reports instead of failing.
        assert by[("lfsr8", "per-register-on-cyclic")]["status"].startswith(
            "invalid")
        assert by[("lfsr8", "dlap")]["status"] == "model-only"
        assert by[("pipe4x1", "dlap")]["desync_cycle_ps"] > 0

    def test_every_registered_strategy_appears_in_defaults(self):
        from repro.desync import default_variants
        strategies = {variant.options.strategy
                      for variant in default_variants()}
        assert strategies == set(CLUSTERING_STRATEGIES)


class TestShardedSweep:
    SWEEP_KWARGS = dict(
        configs=["pipe4x1", "lfsr8", "fir5"],
        variants=[PipelineVariant(
            "serial", options=DesyncOptions(mode=HandshakeMode.SERIAL))],
        seeds=(0, 1), cycles=8)

    def test_sharded_merge_matches_single_process(self):
        from repro.desync.pipeline import SWEEP_COLUMNS
        columns, solo, solo_summary = sweep_pipelines(jobs=1,
                                                      **self.SWEEP_KWARGS)
        _, sharded, sharded_summary = sweep_pipelines(jobs=2,
                                                      **self.SWEEP_KWARGS)
        timing = {SWEEP_COLUMNS.index("build_ms"),
                  SWEEP_COLUMNS.index("verify_ms")}

        def stable(rows):
            return [[value for index, value in enumerate(row)
                     if index not in timing] for row in rows]

        # Byte-identical modulo the wall-time columns: the merge is in
        # submission order, so shard scheduling cannot reorder rows.
        assert stable(sharded) == stable(solo)
        # The sharded run additionally reports its executor accounting;
        # everything the cells computed must still match exactly.
        executor = sharded_summary.pop("executor")
        assert executor["completed"] == len({r[0] for r in sharded})
        assert not executor["quarantined"]
        assert sharded_summary == solo_summary

    def test_jobs_env_knob(self, monkeypatch):
        from repro.desync.pipeline import JOBS_ENV, sweep_jobs
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert sweep_jobs() == 1
        monkeypatch.setenv(JOBS_ENV, "3")
        assert sweep_jobs() == 3
        monkeypatch.setenv(JOBS_ENV, "0")
        assert sweep_jobs() == 1
        monkeypatch.setenv(JOBS_ENV, "two")
        with pytest.raises(OptionsError, match="REPRO_JOBS"):
            sweep_jobs()


class TestNamingDedupe:
    def test_single_source_of_truth(self):
        from repro.desync import controllers, network
        from repro.utils import naming
        assert network.inverted_clock_name is naming.inverted_clock_name
        assert network.ack_net_name is naming.ack_net_name
        assert controllers.inverted_clock_name is naming.inverted_clock_name
        assert controllers.ack_net_name is naming.ack_net_name
        assert naming.clock_net_name("b") == "lt:b"
        assert naming.token_net_name("a", "b") == "tok:a>b"
        assert naming.request_net_name("a", "b") == "req:a>b"
