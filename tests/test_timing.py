"""Tests for static timing analysis and matched-delay planning."""

import pytest

from repro.netlist import GENERIC, Netlist
from repro.timing import (
    DelayPlan,
    INPUTS,
    OUTPUTS,
    analyze,
    chain_toggle_energy,
    gate_delay,
    insert_delay_line,
    matched_delay_target,
    plan_delay_line,
)
from repro.utils.errors import TimingError

from tests.circuits import inverter_pipeline, lfsr3


class TestSta:
    def test_stage_delays_found(self):
        result = analyze(lfsr3())
        # r2 -> r0 goes through the XNOR feedback gate.
        xnor_path = result.stage((("r2")), "r0")
        assert xnor_path > 0
        # r0 -> r1 is a direct wire: zero combinational delay.
        assert result.stage("r0", "r1") == 0.0

    def test_min_max_ordering(self):
        result = analyze(lfsr3())
        for pair, worst in result.max_delay.items():
            assert result.min_delay[pair] <= worst + 1e-9

    def test_critical_pair(self):
        result = analyze(lfsr3())
        pred, succ = result.critical_pair
        assert result.stage(pred, succ) == result.critical_delay

    def test_sync_period_terms(self):
        result = analyze(lfsr3(), setup=100.0, skew=50.0)
        expected = (result.critical_delay + result.clk_to_q + 100.0 + 50.0)
        assert result.sync_period() == pytest.approx(expected)

    def test_pseudo_banks(self):
        result = analyze(inverter_pipeline(2))
        assert (INPUTS, "st0") in result.max_delay
        assert ("st1", OUTPUTS) in result.max_delay

    def test_register_pairs_excludes_ports(self):
        result = analyze(inverter_pipeline(3))
        for pair in result.register_pairs():
            assert INPUTS not in pair
            assert OUTPUTS not in pair

    def test_unknown_stage_raises(self):
        result = analyze(lfsr3())
        with pytest.raises(TimingError):
            result.stage("r0", "r2")  # no direct path

    def test_no_sequential_raises(self):
        netlist = Netlist("comb")
        a = netlist.add_input("a")
        netlist.add_gate("INV", [a], name="i")
        with pytest.raises(TimingError):
            analyze(netlist)

    def test_gate_delay_fanout_derating(self):
        netlist = Netlist("t")
        a = netlist.add_input("a")
        inv = netlist.add_gate("INV", [a], name="i")
        for i in range(4):
            netlist.add_gate("BUF", [inv], name=f"b{i}")
        driver = netlist.instances["i"]
        assert gate_delay(driver) > driver.cell.delay

    def test_longest_path_through_chain(self):
        netlist = Netlist("chain")
        clk = netlist.add_input("clk", clock=True)
        q = netlist.add("DFF", name="src/b", D="loop", CK=clk,
                        Q="q0").output_net()
        current = q
        for i in range(5):
            current = netlist.add_gate("INV", [current], name=f"i{i}")
        netlist.add("DFF", name="dst/b", D=current, CK=clk, Q="loop")
        netlist.add_output(current.name)
        result = analyze(netlist)
        # Five inverters, each with one fanout except the last (two:
        # port + DFF): delay is at least 5 basic INV delays.
        assert result.stage("src", "dst") >= 5 * GENERIC["INV"].delay


class TestDelayPlanning:
    def test_plan_reaches_target(self):
        plan = plan_delay_line(500.0, GENERIC)
        assert plan.achieved >= 500.0
        assert plan.n_cells == 8  # 500 / 65 -> ceil

    def test_zero_target(self):
        plan = plan_delay_line(0.0, GENERIC)
        assert plan.n_cells == 0
        assert plan.achieved == 0.0

    def test_negative_target_rejected(self):
        with pytest.raises(TimingError):
            plan_delay_line(-1.0, GENERIC)

    def test_matched_target_formula(self):
        target = matched_delay_target(1000.0, clk_to_q=200.0, margin=0.1)
        assert target == pytest.approx(200.0 + 1100.0)

    def test_matched_target_with_launch_pad(self):
        assert matched_delay_target(0.0, 100.0, 0.0, launch_pad=50.0) == 150.0

    def test_negative_margin_rejected(self):
        with pytest.raises(TimingError):
            matched_delay_target(100.0, 100.0, margin=-0.5)

    def test_insert_delay_line(self):
        netlist = Netlist("t")
        a = netlist.add_input("a")
        plan = plan_delay_line(200.0, GENERIC)
        out = insert_delay_line(netlist, a, "dl", plan)
        assert out is not a
        assert len(netlist.comb_instances()) == plan.n_cells

    def test_insert_empty_line_passthrough(self):
        netlist = Netlist("t")
        a = netlist.add_input("a")
        plan = DelayPlan(target=0.0, n_cells=0, achieved=0.0, area=0.0)
        assert insert_delay_line(netlist, a, "dl", plan) is a

    def test_chain_toggle_energy(self):
        plan = plan_delay_line(325.0, GENERIC)
        energy = chain_toggle_energy(plan, GENERIC)
        assert energy > 0
        assert energy == pytest.approx(
            plan.n_cells * GENERIC.switching_energy(GENERIC["BUF"], 1))
