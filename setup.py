"""Setup shim for legacy editable installs (offline env lacks `wheel`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'From Synchronous to Asynchronous: An Automatic "
        "Approach' (Cortadella et al., DATE 2004): automatic "
        "de-synchronization of gate-level netlists"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
